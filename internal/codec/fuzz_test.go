package codec

import "testing"

// The decoders parse checkpoint and frontier bytes that — in the systems
// being modeled — crossed a network. They must survive arbitrary and
// truncated input without panicking or over-allocating; a bad record is an
// error, never a crash. Run with `go test -fuzz=FuzzX ./internal/codec`
// for an open-ended session; the seed corpus below runs in every ordinary
// `go test`.

func FuzzDecodeIDs(f *testing.F) {
	for _, s := range []Scheme{Raw, DeltaVarint, Bitvector} {
		enc, err := EncodeIDs(s, []uint32{0, 3, 64, 1000}, 2048)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
		f.Add(enc[:len(enc)/2])
	}
	f.Add([]byte{})
	f.Add([]byte{byte(Bitvector), 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		ids, err := DecodeIDs(data)
		if err != nil {
			return
		}
		switch Scheme(data[0]) {
		case Raw, DeltaVarint:
			// Every id costs at least one input byte in both schemes, so a
			// decode can never produce more ids than bytes (an allocation
			// bound, not just a sanity check).
			if len(ids) > len(data) {
				t.Fatalf("scheme %d decoded %d ids from %d bytes", data[0], len(ids), len(data))
			}
		case Bitvector:
			// Bitmap decodes are strictly increasing by construction.
			for i := 1; i < len(ids); i++ {
				if ids[i] <= ids[i-1] {
					t.Fatalf("bitvector decoded unordered ids %v", ids)
				}
			}
		}
	})
}

func FuzzSection(f *testing.F) {
	f.Add(AppendSection(AppendSection(nil, []byte("ab")), []byte("cdef")))
	f.Add([]byte{0x80})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rest := data
		// Walk at most a bounded number of sections; each step must either
		// error or strictly consume bytes.
		for i := 0; i < 64 && len(rest) > 0; i++ {
			sec, next, err := Section(rest)
			if err != nil {
				return
			}
			if len(next)+len(sec) > len(rest) {
				t.Fatalf("section invented bytes: %d+%d from %d", len(sec), len(next), len(rest))
			}
			if len(next) >= len(rest) {
				t.Fatal("section consumed nothing")
			}
			rest = next
		}
	})
}

func FuzzTypedArrays(f *testing.F) {
	f.Add(AppendUint64s(nil, []uint64{1, 2, 3}))
	f.Add(AppendFloat64s(nil, []float64{0.5, -1}))
	f.Add(AppendUint32s(nil, []uint32{9}))
	f.Add(AppendInt32s(nil, []int32{-7}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		if vals, _, err := Uint64s(data); err == nil && uint64(len(vals)) > uint64(len(data)) {
			t.Fatalf("uint64s decoded %d values from %d bytes", len(vals), len(data))
		}
		if vals, _, err := Uint32s(data); err == nil && uint64(len(vals)) > uint64(len(data)) {
			t.Fatalf("uint32s decoded %d values from %d bytes", len(vals), len(data))
		}
		_, _, _ = Float64s(data)
		_, _, _ = Int32s(data)
		_, _, _ = Uvarint(data)
	})
}
