package graph

import (
	"math/rand"
	"sort"
	"testing"
)

func randomEdgeList(rng *rand.Rand, n int, vertices uint32) []Edge {
	edges := make([]Edge, n)
	for i := range edges {
		edges[i] = Edge{Src: rng.Uint32() % vertices, Dst: rng.Uint32() % vertices}
	}
	return edges
}

// TestSortEdgesByKey checks the radix path against the comparator
// reference across sizes on both sides of radixSortThreshold, with heavy
// duplication so the stable scatter and dedup interaction are exercised.
func TestSortEdgesByKey(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sizes := []int{0, 1, 2, 100, radixSortThreshold - 1, radixSortThreshold, radixSortThreshold + 1, radixSortThreshold * 3}
	if testing.Short() {
		sizes = []int{0, 1, 100, radixSortThreshold + 1}
	}
	for _, n := range sizes {
		// Few distinct vertices → many duplicate keys.
		edges := randomEdgeList(rng, n, 1<<10)
		want := append([]Edge(nil), edges...)
		sort.Slice(want, func(i, j int) bool {
			if want[i].Src != want[j].Src {
				return want[i].Src < want[j].Src
			}
			return want[i].Dst < want[j].Dst
		})
		sortEdgesByKey(edges)
		for i := range edges {
			if edges[i] != want[i] {
				t.Fatalf("n=%d: edges[%d] = %v, want %v", n, i, edges[i], want[i])
			}
		}
	}
}

// TestSortEdgesByKeyExtremes pins the key packing order: Src is the high
// half, so sorting by key sorts by (Src, Dst) even at the uint32 extremes.
func TestSortEdgesByKeyExtremes(t *testing.T) {
	edges := make([]Edge, radixSortThreshold+4)
	edges[0] = Edge{Src: ^uint32(0), Dst: 0}
	edges[1] = Edge{Src: 0, Dst: ^uint32(0)}
	edges[2] = Edge{Src: ^uint32(0), Dst: ^uint32(0)}
	edges[3] = Edge{Src: 0, Dst: 0}
	rng := rand.New(rand.NewSource(5))
	for i := 4; i < len(edges); i++ {
		edges[i] = Edge{Src: rng.Uint32(), Dst: rng.Uint32()}
	}
	sortEdgesByKey(edges)
	for i := 1; i < len(edges); i++ {
		a, b := edges[i-1], edges[i]
		if a.Src > b.Src || (a.Src == b.Src && a.Dst > b.Dst) {
			t.Fatalf("edges[%d]=%v > edges[%d]=%v", i-1, a, i, b)
		}
	}
}

// TestBuildDedupLargeMatchesSmallPath verifies Build's dedup produces the
// same CSR whether the radix path (above threshold) or the comparator
// path handled the sort: duplicates collapse identically.
func TestBuildDedupLargeMatchesSmallPath(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const vertices = 1 << 9
	base := randomEdgeList(rng, radixSortThreshold/2, vertices)
	// Triplicate every edge and shuffle: well above threshold, maximally
	// duplicated.
	big := make([]Edge, 0, len(base)*3)
	for i := 0; i < 3; i++ {
		big = append(big, base...)
	}
	rng.Shuffle(len(big), func(i, j int) { big[i], big[j] = big[j], big[i] })
	if len(big) < radixSortThreshold {
		t.Fatalf("test input too small to hit the radix path: %d", len(big))
	}

	build := func(edges []Edge) *CSR {
		b := NewBuilder(vertices)
		b.AddEdges(edges)
		g, err := b.Build(BuildOptions{Dedup: true})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	got := build(big)
	want := build(base[:len(base):len(base)]) // below threshold: comparator path

	if got.NumVertices != want.NumVertices || got.NumEdges() != want.NumEdges() {
		t.Fatalf("shape mismatch: got %d/%d, want %d/%d",
			got.NumVertices, got.NumEdges(), want.NumVertices, want.NumEdges())
	}
	for i := range want.Offsets {
		if got.Offsets[i] != want.Offsets[i] {
			t.Fatalf("Offsets[%d] = %d, want %d", i, got.Offsets[i], want.Offsets[i])
		}
	}
	for i := range want.Targets {
		if got.Targets[i] != want.Targets[i] {
			t.Fatalf("Targets[%d] = %d, want %d", i, got.Targets[i], want.Targets[i])
		}
	}
}

// TestEdgeBalancedRanges checks the CSR-level wrapper: bounds tile the
// vertex range and every part's edge share is within one max-degree of
// the ideal.
func TestEdgeBalancedRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	edges := randomEdgeList(rng, 40_000, 1<<11)
	b := NewBuilder(1 << 11)
	b.AddEdges(edges)
	g, err := b.Build(BuildOptions{Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	var maxDeg int64
	for v := uint32(0); v < g.NumVertices; v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	for _, k := range []int{1, 2, 4, 7, 16} {
		bounds := g.EdgeBalancedRanges(k)
		if len(bounds) != k+1 || bounds[0] != 0 || bounds[k] != g.NumVertices {
			t.Fatalf("k=%d: bad bounds endpoints %v", k, bounds)
		}
		for p := 0; p < k; p++ {
			if bounds[p] > bounds[p+1] {
				t.Fatalf("k=%d: bounds not monotone at part %d", k, p)
			}
			part := g.Offsets[bounds[p+1]] - g.Offsets[bounds[p]]
			if limit := g.NumEdges()/int64(k) + maxDeg + 1; part > limit {
				t.Errorf("k=%d part %d: %d edges exceeds limit %d", k, p, part, limit)
			}
		}
	}
}
