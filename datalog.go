package graphmaze

import (
	"fmt"

	"graphmaze/internal/graph"
	"graphmaze/internal/socialite"
)

// Datalog is a queryable SociaLite-style Datalog session over graph data:
// register edge and value tables, then evaluate rules written in the
// paper's notation, e.g.
//
//	db := graphmaze.NewDatalog()
//	db.AddEdgeTable("EDGE", g)
//	dist := db.AddTable("BFS", g.NumVertices)
//	dist.Set(0, 0)
//	db.Fixpoint("BFS(t, $MIN(d)) :- BFS(s, d0), d = d0 + 1, EDGE(s, t).")
//
// Aggregations: $SUM, $MIN, $INC(1); plain heads assign. Recursive rules
// (head table appearing as the driver) are evaluated semi-naively by
// Fixpoint; non-recursive rules evaluate once with Eval.
type Datalog struct {
	reg *socialite.Registry
}

// NewDatalog returns an empty session.
func NewDatalog() *Datalog {
	return &Datalog{reg: socialite.NewRegistry()}
}

// AddEdgeTable registers a graph's adjacency as a two-column relation.
func (d *Datalog) AddEdgeTable(name string, g *Graph) {
	d.reg.Register(socialite.NewEdgeTable(name, g))
}

// DatalogTable is a keyed scalar relation usable in rules.
type DatalogTable struct {
	t *socialite.VecTable
}

// AddTable registers (and returns) an empty keyed table over [0, numKeys).
func (d *Datalog) AddTable(name string, numKeys uint32) *DatalogTable {
	t := socialite.NewVecTable(name, numKeys)
	d.reg.Register(t)
	return &DatalogTable{t: t}
}

// Set assigns key ← value.
func (t *DatalogTable) Set(key uint32, value float64) {
	t.t.Put(key, socialite.Scalar(value))
}

// Get reads a key's value.
func (t *DatalogTable) Get(key uint32) (float64, bool) {
	v, ok := t.t.Get(key)
	if !ok {
		return 0, false
	}
	return v.S(), true
}

// Len reports how many keys hold values.
func (t *DatalogTable) Len() int { return t.t.Len() }

// ForEach visits every (key, value) pair in key order.
func (t *DatalogTable) ForEach(fn func(key uint32, value float64)) {
	t.t.ForEach(func(k uint32, v socialite.Value) { fn(k, v.S()) })
}

// driverSpan reports the compiled rule's driver key space.
func driverSpan(rule *socialite.Rule) (uint32, error) {
	switch {
	case rule.Driver.Vec != nil:
		return rule.Driver.Vec.Table.NumKeys(), nil
	case rule.Driver.Edge != nil:
		return rule.Driver.Edge.Table.NumKeys(), nil
	default:
		return 0, fmt.Errorf("graphmaze: rule has no driver")
	}
}

// Eval compiles and evaluates the rule once over all driver tuples.
func (d *Datalog) Eval(src string) error {
	rule, err := socialite.Parse(src, d.reg)
	if err != nil {
		return err
	}
	span, err := driverSpan(rule)
	if err != nil {
		return err
	}
	_, err = socialite.EvalParallel(rule, 0, span, nil, nil, 0, false)
	return err
}

// Fixpoint compiles a recursive rule (the head table must also be the
// driver) and evaluates it semi-naively until no value changes. It
// returns the number of rounds.
func (d *Datalog) Fixpoint(src string) (int, error) {
	rule, err := socialite.Parse(src, d.reg)
	if err != nil {
		return 0, err
	}
	if rule.Driver.Vec == nil || rule.Driver.Vec.Table != rule.Head.Table {
		return 0, fmt.Errorf("graphmaze: Fixpoint needs a recursive rule (head table driving the body); use Eval for %q", src)
	}
	span := rule.Driver.Vec.Table.NumKeys()
	// Initial delta: every key currently present.
	var delta []uint32
	rule.Driver.Vec.Table.ForEach(func(k uint32, _ socialite.Value) { delta = append(delta, k) })
	rounds := 0
	for len(delta) > 0 {
		rounds++
		stats, err := socialite.EvalParallel(rule, 0, span, delta, nil, 0, true)
		if err != nil {
			return rounds, err
		}
		delta = stats.Changed
	}
	return rounds, nil
}

var _ = graph.Edge{} // anchor the graph import for the Graph alias
