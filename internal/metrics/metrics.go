// Package metrics collects the system-level quantities the paper measures
// with sar/sysstat (§5.4): CPU utilization, memory footprint, total network
// bytes sent, and peak achieved network bandwidth. In graphmaze they are
// gathered from the cluster simulation's ground truth rather than OS
// counters.
package metrics

import (
	"fmt"
	"math"
	"strings"
	"sync"
)

// Report is the per-run summary the harness prints for Figure 6 and uses
// to explain slowdowns.
type Report struct {
	Nodes int

	// SimulatedSeconds is the modeled wall-clock of the run: per-phase
	// compute plus (possibly overlapped) network time.
	SimulatedSeconds float64
	// ComputeSeconds and NetworkSeconds are the two addends before
	// overlap, summed over phases (max over nodes within each phase).
	ComputeSeconds, NetworkSeconds float64

	// CPUUtilization is useful-thread-seconds divided by
	// (SimulatedSeconds × provisioned threads × nodes), in [0,1].
	CPUUtilization float64

	// BytesSent is the total bytes put on the (modeled) wire by all nodes;
	// MessagesSent counts discrete messages.
	BytesSent    int64
	MessagesSent int64

	// PeakNetworkBandwidth is the highest per-phase achieved rate
	// (bytes/s) at any node.
	PeakNetworkBandwidth float64

	// MemoryFootprintBytes is the high-water per-node footprint (graph
	// partitions plus message buffers); MemoryPerNode is the modeled node
	// capacity it is normalized against in Figure 6.
	MemoryFootprintBytes int64
	MemoryPerNode        int64

	// CheckpointSeconds is virtual time spent writing checkpoints; it is
	// included in SimulatedSeconds. CheckpointBytes and Checkpoints size
	// the snapshots (DESIGN.md §10).
	CheckpointSeconds float64
	CheckpointBytes   int64
	Checkpoints       int

	// RecoverySeconds is virtual time lost to failures: aborted-phase
	// work, failure detection, and checkpoint restore reads. Included in
	// SimulatedSeconds. Recoveries counts rollback-and-replay episodes,
	// FailedPhases the phases that aborted, and ReplayedPhases the
	// executed phases whose work a rollback discarded and redid.
	RecoverySeconds float64
	Recoveries      int
	FailedPhases    int
	ReplayedPhases  int
}

// MemoryFraction reports footprint / capacity, or 0 when no capacity was
// modeled.
func (r Report) MemoryFraction() float64 {
	if r.MemoryPerNode == 0 {
		return 0
	}
	return float64(r.MemoryFootprintBytes) / float64(r.MemoryPerNode)
}

// String renders a compact single-line summary. The peak-bandwidth rate is
// formatted as the float it is, not truncated through an integer byte
// count.
func (r Report) String() string {
	return fmt.Sprintf("nodes=%d time=%.4gs cpu=%.0f%% sent=%s peakBW=%s mem=%s",
		r.Nodes, r.SimulatedSeconds, 100*r.CPUUtilization,
		FormatBytes(r.BytesSent), FormatRate(r.PeakNetworkBandwidth),
		FormatBytes(r.MemoryFootprintBytes))
}

// FormatBytes renders a byte count with a binary-ish unit suffix.
// Negative counts (deltas from a Merge, anomalies worth surfacing) format
// as the signed magnitude rather than falling through to the raw value.
func FormatBytes(b int64) string {
	const unit = 1024
	if b < 0 {
		if b == math.MinInt64 {
			// -b would overflow; one byte of drift at this magnitude is
			// beyond any modeled quantity, so format via float.
			return fmt.Sprintf("-%.1fEB", -float64(b)/float64(1<<60))
		}
		return "-" + FormatBytes(-b)
	}
	if b < unit {
		return fmt.Sprintf("%dB", b)
	}
	div, exp := int64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%cB", float64(b)/float64(div), "KMGTPE"[exp])
}

// FormatRate renders a bytes/second rate with a unit suffix, keeping the
// float precision an int64 round-trip would destroy.
func FormatRate(bytesPerSec float64) string {
	neg := ""
	if bytesPerSec < 0 {
		neg = "-"
		bytesPerSec = -bytesPerSec
	}
	const unit = 1024
	if bytesPerSec < unit {
		return fmt.Sprintf("%s%.3gB/s", neg, bytesPerSec)
	}
	div, exp := float64(unit), 0
	for bytesPerSec/div >= unit && exp < 5 {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%s%.1f%cB/s", neg, bytesPerSec/div, "KMGTPE"[exp])
}

// Collector accumulates per-phase observations during a cluster run. It is
// safe for concurrent use by per-node goroutines.
type Collector struct {
	mu sync.Mutex

	nodes        int
	threadsPer   int
	memPerNode   int64
	simSeconds   float64
	computeSec   float64
	networkSec   float64
	busyThreadS  float64
	bytesSent    int64
	messagesSent int64
	peakBW       float64
	memHighWater map[int]int64

	ckptSec        float64
	ckptBytes      int64
	ckpts          int
	recoverySec    float64
	recoveries     int
	failedPhases   int
	replayedPhases int
}

// NewCollector returns a collector for a run over the given node count and
// provisioned thread count per node. memPerNode (may be 0) is the modeled
// node memory capacity.
func NewCollector(nodes, threadsPerNode int, memPerNode int64) *Collector {
	return &Collector{
		nodes:        nodes,
		threadsPer:   threadsPerNode,
		memPerNode:   memPerNode,
		memHighWater: make(map[int]int64),
	}
}

// AddPhase records one phase's modeled times: the phase's contribution to
// wall clock, its compute and network components, and the useful
// thread-seconds burned across all nodes.
func (c *Collector) AddPhase(wallSeconds, computeSeconds, networkSeconds, busyThreadSeconds float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.simSeconds += wallSeconds
	c.computeSec += computeSeconds
	c.networkSec += networkSeconds
	c.busyThreadS += busyThreadSeconds
}

// AddTraffic records bytes and message counts put on the wire by one node
// during a phase, with the rate it achieved.
func (c *Collector) AddTraffic(bytes, messages int64, achievedBW float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bytesSent += bytes
	c.messagesSent += messages
	if achievedBW > c.peakBW {
		c.peakBW = achievedBW
	}
}

// AddCheckpoint charges one checkpoint write: wallSeconds joins the
// simulated clock (a synchronous checkpoint stalls the run, as Pregel's
// does) and the checkpoint tallies.
func (c *Collector) AddCheckpoint(wallSeconds float64, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.simSeconds += wallSeconds
	c.ckptSec += wallSeconds
	c.ckptBytes += bytes
	c.ckpts++
}

// AddFailedPhase charges the virtual time an aborted phase burned
// (partial compute plus failure detection) to the simulated clock and the
// recovery tally.
func (c *Collector) AddFailedPhase(wallSeconds float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.simSeconds += wallSeconds
	c.recoverySec += wallSeconds
	c.failedPhases++
}

// AddRecovery charges one rollback: the restore read joins the simulated
// clock, and replayedPhases records how many executed phases the rollback
// discarded (they re-execute and charge again as ordinary phases).
func (c *Collector) AddRecovery(restoreSeconds float64, replayedPhases int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.simSeconds += restoreSeconds
	c.recoverySec += restoreSeconds
	c.recoveries++
	c.replayedPhases += replayedPhases
}

// RecordMemory raises node's memory high-water mark to at least bytes.
func (c *Collector) RecordMemory(node int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if bytes > c.memHighWater[node] {
		c.memHighWater[node] = bytes
	}
}

// Merge folds other's observations into c: times, traffic, and busy
// thread-seconds add; peak bandwidth takes the max; per-node memory
// high-water marks take the per-node max. Use it to aggregate per-node (or
// per-shard) collectors that accumulated independently instead of sharing
// one mutex across all nodes. Merging a collector into itself or merging
// nil is a no-op. Safe for concurrent use, but other must not be receiving
// observations during the merge.
func (c *Collector) Merge(other *Collector) {
	if other == nil || other == c {
		return
	}
	other.mu.Lock()
	simSeconds := other.simSeconds
	computeSec := other.computeSec
	networkSec := other.networkSec
	busyThreadS := other.busyThreadS
	bytesSent := other.bytesSent
	messagesSent := other.messagesSent
	peakBW := other.peakBW
	ckptSec, ckptBytes, ckpts := other.ckptSec, other.ckptBytes, other.ckpts
	recoverySec, recoveries := other.recoverySec, other.recoveries
	failedPhases, replayedPhases := other.failedPhases, other.replayedPhases
	memHighWater := make(map[int]int64, len(other.memHighWater))
	for node, hw := range other.memHighWater {
		memHighWater[node] = hw
	}
	other.mu.Unlock()

	c.mu.Lock()
	defer c.mu.Unlock()
	c.simSeconds += simSeconds
	c.computeSec += computeSec
	c.networkSec += networkSec
	c.busyThreadS += busyThreadS
	c.bytesSent += bytesSent
	c.messagesSent += messagesSent
	c.ckptSec += ckptSec
	c.ckptBytes += ckptBytes
	c.ckpts += ckpts
	c.recoverySec += recoverySec
	c.recoveries += recoveries
	c.failedPhases += failedPhases
	c.replayedPhases += replayedPhases
	if peakBW > c.peakBW {
		c.peakBW = peakBW
	}
	for node, hw := range memHighWater {
		if hw > c.memHighWater[node] {
			c.memHighWater[node] = hw
		}
	}
}

// Report finalizes the collected observations.
func (c *Collector) Report() Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := Report{
		Nodes:                c.nodes,
		SimulatedSeconds:     c.simSeconds,
		ComputeSeconds:       c.computeSec,
		NetworkSeconds:       c.networkSec,
		BytesSent:            c.bytesSent,
		MessagesSent:         c.messagesSent,
		PeakNetworkBandwidth: c.peakBW,
		MemoryPerNode:        c.memPerNode,
		CheckpointSeconds:    c.ckptSec,
		CheckpointBytes:      c.ckptBytes,
		Checkpoints:          c.ckpts,
		RecoverySeconds:      c.recoverySec,
		Recoveries:           c.recoveries,
		FailedPhases:         c.failedPhases,
		ReplayedPhases:       c.replayedPhases,
	}
	for _, hw := range c.memHighWater {
		if hw > r.MemoryFootprintBytes {
			r.MemoryFootprintBytes = hw
		}
	}
	if c.simSeconds > 0 && c.threadsPer > 0 && c.nodes > 0 {
		r.CPUUtilization = c.busyThreadS / (c.simSeconds * float64(c.threadsPer) * float64(c.nodes))
		if r.CPUUtilization > 1 {
			r.CPUUtilization = 1
		}
	}
	return r
}

// FormatTable renders labeled reports as the normalized four-metric table
// of Figure 6. Values are percentages of: full CPU, the reference peak
// bandwidth, node memory capacity, and the largest byte count among rows.
func FormatTable(labels []string, reports []Report, refBandwidth float64) string {
	var maxBytes int64
	for _, r := range reports {
		if r.BytesSent > maxBytes {
			maxBytes = r.BytesSent
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %12s %14s %12s %14s\n", "framework", "CPU util %", "peak net BW %", "memory %", "bytes sent %")
	for i, r := range reports {
		label := "?"
		if i < len(labels) {
			label = labels[i]
		}
		bwPct, memPct, sentPct := 0.0, 0.0, 0.0
		if refBandwidth > 0 {
			bwPct = 100 * r.PeakNetworkBandwidth / refBandwidth
		}
		memPct = 100 * r.MemoryFraction()
		if maxBytes > 0 {
			sentPct = 100 * float64(r.BytesSent) / float64(maxBytes)
		}
		fmt.Fprintf(&b, "%-12s %12.1f %14.1f %12.1f %14.1f\n",
			label, 100*r.CPUUtilization, bwPct, memPct, sentPct)
	}
	return b.String()
}
