// Recommender trains a matrix-factorization model on a Netflix-like
// synthetic rating set and produces top-N recommendations — the paper's
// collaborative-filtering workload end to end, including the SGD-vs-GD
// convergence comparison of §3.2.
package main

import (
	"fmt"
	"log"
	"sort"

	"graphmaze"
)

func main() {
	ratings, err := graphmaze.RatingsDataset("netflix")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("netflix stand-in: %d users × %d items, %d ratings\n\n",
		ratings.NumUsers, ratings.NumItems, ratings.NumRatings())

	// SGD vs GD on the same budget (paper §3.2: SGD converges in ~40×
	// fewer iterations on Netflix).
	const iters = 12
	sgd, err := graphmaze.Native().CollabFilter(ratings, graphmaze.CFOptions{
		Method: graphmaze.SGD, K: 16, Iterations: iters, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	gd, err := graphmaze.Native().CollabFilter(ratings, graphmaze.CFOptions{
		Method: graphmaze.GradientDescent, K: 16, Iterations: iters, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("iteration   SGD RMSE   GD RMSE")
	for i := 0; i < iters; i += 2 {
		fmt.Printf("%9d   %8.4f   %7.4f\n", i+1, sgd.RMSE[i], gd.RMSE[i])
	}

	// Only Native and Galois can express SGD (paper Table 2 / §3.2).
	fmt.Println("\nSGD expressibility across frameworks:")
	for _, eng := range graphmaze.Engines() {
		_, err := eng.CollabFilter(ratings, graphmaze.CFOptions{
			Method: graphmaze.SGD, K: 4, Iterations: 1, Seed: 7})
		status := "yes"
		if err != nil {
			status = "no (" + err.Error() + ")"
		}
		fmt.Printf("  %-12s %s\n", eng.Name(), status)
	}

	// Recommend: highest predicted unseen items for a heavy user.
	heavy := uint32(0)
	for u := uint32(0); u < ratings.NumUsers; u++ {
		if ratings.ByUser.Degree(u) > ratings.ByUser.Degree(heavy) {
			heavy = u
		}
	}
	k := sgd.K
	pu := sgd.UserFactors[int(heavy)*k : (int(heavy)+1)*k]
	seen := map[uint32]bool{}
	for _, v := range ratings.ByUser.Neighbors(heavy) {
		seen[v] = true
	}
	type rec struct {
		item  uint32
		score float64
	}
	var recs []rec
	for v := uint32(0); v < ratings.NumItems; v++ {
		if seen[v] {
			continue
		}
		qv := sgd.ItemFactors[int(v)*k : (int(v)+1)*k]
		var score float64
		for d := 0; d < k; d++ {
			score += float64(pu[d]) * float64(qv[d])
		}
		recs = append(recs, rec{item: v, score: score})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].score > recs[j].score })
	fmt.Printf("\ntop recommendations for user %d (%d ratings):\n", heavy, ratings.ByUser.Degree(heavy))
	for _, r := range recs[:5] {
		fmt.Printf("  item %-6d predicted %.2f stars\n", r.item, r.score)
	}
}
