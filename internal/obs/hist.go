// Package obs is the live observability layer: lock-free latency
// histograms with quantile estimation, float gauges, a unified metrics
// registry that also fronts the trace counters, a Go-runtime sampler, and
// Prometheus/JSON exposition with pprof endpoints. Everything here follows
// the repo's tracer discipline: every method is nil-safe, the disabled
// path (nil receiver) is a single pointer check with zero allocations, and
// the enabled hot path (Histogram.Record, Gauge.Set) never allocates or
// takes a lock.
//
// The package deliberately depends only on the standard library and sits
// below internal/trace in the import graph: the tracer owns a Registry and
// feeds its counters and span durations into it, never the other way
// around.
package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync/atomic"
)

// Bucket scheme: log-linear, base-2 with histSub linear sub-buckets per
// octave (HdrHistogram-style, collapsed to a fixed array).
//
//   - Values 0..histSub-1 land in exact unit buckets 0..histSub-1.
//   - A value v >= histSub with highest set bit e (v in [2^e, 2^(e+1)))
//     falls in sub-bucket (v >> (e-histSubBits)) & (histSub-1), giving
//     bucket index (e-histSubBits)*histSub + histSub + sub.
//
// With histSubBits = 2 that is 4 sub-buckets per power of two and 248
// buckets total covering all of int64, ~2KB of counters per lane. Each
// bucket spans [low, low + width) with width = 2^(e-histSubBits), so the
// midpoint estimate returned by quantiles is off by at most width/2 <=
// v/8: a relative quantile error bound of 12.5% on top of ordinary rank
// granularity. That is plenty for latency work where the interesting
// signal is order-of-magnitude tail movement.
const (
	histSubBits = 2
	histSub     = 1 << histSubBits
	// histBuckets = exact unit buckets + histSub per octave for exponents
	// histSubBits..62 (63-histSubBits octaves): 4 + 61*4 = 248.
	histBuckets = histSub + (63-histSubBits)*histSub
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < histSub {
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1
	sub := int((uint64(v) >> uint(e-histSubBits)) & (histSub - 1))
	return (e-histSubBits)*histSub + histSub + sub
}

// bucketLow returns the smallest value mapped to bucket i.
func bucketLow(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	e := (i-histSub)/histSub + histSubBits
	sub := (i - histSub) % histSub
	return int64(1)<<uint(e) | int64(sub)<<uint(e-histSubBits)
}

// bucketWidth returns the number of distinct values mapped to bucket i.
func bucketWidth(i int) int64 {
	if i < histSub {
		return 1
	}
	e := (i-histSub)/histSub + histSubBits
	return int64(1) << uint(e-histSubBits)
}

// bucketMid returns the midpoint estimate reported for bucket i.
func bucketMid(i int) int64 {
	return bucketLow(i) + (bucketWidth(i)-1)/2
}

// histLane is one worker's private shard of a histogram. The struct is
// padded to a multiple of 64 bytes so adjacent lanes never share a cache
// line; counts dominate (~2KB) so the pad is noise.
type histLane struct {
	counts [histBuckets]atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
	_      [48]byte
}

// Histogram is a lock-free, mergeable latency/size histogram sharded
// across per-worker lanes. Record is wait-free apart from the max
// high-water CAS, never allocates, and scales linearly with workers as
// long as callers pass their own worker index (the obs lint rule enforces
// this inside par.For* bodies). A nil *Histogram is a valid disabled
// histogram: every method is a no-op costing one branch.
type Histogram struct {
	name  string
	mask  uint32
	lanes []histLane
}

// newHistogram builds a histogram with lanes rounded up to a power of two
// covering n workers (so indexing is a mask, mirroring trace.Counter).
func newHistogram(name string, workers int) *Histogram {
	n := 1
	for n < workers {
		n <<= 1
	}
	return &Histogram{name: name, mask: uint32(n - 1), lanes: make([]histLane, n)}
}

// Name returns the registry name ("" on a nil histogram).
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Record adds one observation of v (clamped at 0) attributed to worker.
// Worker indices beyond the lane count wrap by mask: totals stay exact,
// only the scaling benefit of private lanes degrades.
func (h *Histogram) Record(worker int, v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	ln := &h.lanes[uint32(worker)&h.mask]
	ln.counts[bucketIndex(v)].Add(1)
	ln.sum.Add(v)
	for {
		cur := ln.max.Load()
		if v <= cur || ln.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Snapshot folds every lane into one immutable HistSnapshot. Concurrent
// Records may land in either side of the fold; each observation is counted
// exactly once overall because lane counters are only ever added to.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{Name: h.name, Buckets: make([]int64, histBuckets)}
	for li := range h.lanes {
		ln := &h.lanes[li]
		for i := range ln.counts {
			if c := ln.counts[i].Load(); c != 0 {
				s.Buckets[i] += c
				s.Count += c
			}
		}
		s.Sum += ln.sum.Load()
		if m := ln.max.Load(); m > s.Max {
			s.Max = m
		}
	}
	return s
}

// HistSnapshot is a point-in-time copy of a histogram: plain integers,
// safe to marshal, subtract, and merge. The zero value is an empty
// snapshot.
type HistSnapshot struct {
	Name    string  `json:"name"`
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Max     int64   `json:"max"`
	Buckets []int64 `json:"buckets,omitempty"`
}

// Merge returns the elementwise sum of two snapshots. Merging is pure
// integer addition, hence bit-stable: associative, commutative, and
// independent of merge order — the property the cluster relies on when
// folding per-node histograms.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	out := HistSnapshot{Name: s.Name, Count: s.Count + o.Count, Sum: s.Sum + o.Sum, Max: s.Max}
	if s.Name == "" {
		out.Name = o.Name
	}
	if o.Max > out.Max {
		out.Max = o.Max
	}
	if s.Buckets == nil && o.Buckets == nil {
		return out
	}
	out.Buckets = make([]int64, histBuckets)
	copy(out.Buckets, s.Buckets)
	for i := range o.Buckets {
		out.Buckets[i] += o.Buckets[i]
	}
	return out
}

// Sub returns the observations recorded after prev was taken, assuming
// prev is an earlier snapshot of the same histogram (bucket counters are
// monotone, so the bucket-wise difference is exact). Max cannot be
// differenced and is carried over from the later snapshot as an upper
// bound on the interval's maximum.
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	out := HistSnapshot{Name: s.Name, Count: s.Count - prev.Count, Sum: s.Sum - prev.Sum, Max: s.Max}
	if s.Buckets == nil {
		return out
	}
	out.Buckets = make([]int64, histBuckets)
	copy(out.Buckets, s.Buckets)
	for i := range prev.Buckets {
		out.Buckets[i] -= prev.Buckets[i]
	}
	return out
}

// Quantile returns the midpoint estimate of the q-th quantile (q in
// [0,1]); 0 on an empty snapshot. The estimate is within the bucket error
// bound (<= 12.5% relative) of the exact rank statistic.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count <= 0 || len(s.Buckets) == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var seen int64
	for i, c := range s.Buckets {
		seen += c
		if seen >= rank {
			mid := bucketMid(i)
			if mid > s.Max && s.Max > 0 {
				return s.Max
			}
			return mid
		}
	}
	return s.Max
}

// Mean returns the exact arithmetic mean of the recorded values.
func (s HistSnapshot) Mean() float64 {
	if s.Count <= 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantiles is the fixed summary exported into run records and trace
// reports. Values carry the unit of whatever was recorded (nanoseconds for
// every latency histogram in this repo).
type Quantiles struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean_ns"`
	P50   int64   `json:"p50_ns"`
	P90   int64   `json:"p90_ns"`
	P99   int64   `json:"p99_ns"`
	P999  int64   `json:"p999_ns"`
	Max   int64   `json:"max_ns"`
}

// Summary computes the standard quantile set from a snapshot.
func (s HistSnapshot) Summary() Quantiles {
	return Quantiles{
		Count: s.Count,
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P90:   s.Quantile(0.90),
		P99:   s.Quantile(0.99),
		P999:  s.Quantile(0.999),
		Max:   s.Max,
	}
}

// DeltaQuantiles subtracts prev from cur histogram-wise and returns the
// quantile summaries of every histogram that recorded at least one
// observation in between. The harness uses it to attribute registry
// activity to a single run.
func DeltaQuantiles(prev, cur map[string]HistSnapshot) map[string]Quantiles {
	var out map[string]Quantiles
	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		d := cur[name].Sub(prev[name])
		if d.Count <= 0 {
			continue
		}
		if out == nil {
			out = make(map[string]Quantiles)
		}
		out[name] = d.Summary()
	}
	return out
}
