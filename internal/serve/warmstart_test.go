package serve

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"graphmaze/internal/graph"
)

// TestWarmStartRoundTrip is the satellite acceptance test: a graph that
// has ingested deltas is persisted with SaveSnapshotFile, resumed with
// WarmStart, and the resumed service answers every query with the exact
// bytes the original would produce, at the original epoch number.
func TestWarmStartRoundTrip(t *testing.T) {
	v := buildVersioned(t, 7, true, 42)
	if _, _, _, err := v.ApplyDelta([]graph.Edge{{Src: 1, Dst: 2}, {Src: 3, Dst: 90}}); err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if _, _, _, err := v.ApplyDelta([]graph.Edge{{Src: 7, Dst: 8}}); err != nil {
		t.Fatalf("ApplyDelta 2: %v", err)
	}
	if v.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", v.Epoch())
	}

	path := filepath.Join(t.TempDir(), "social.snap")
	if err := SaveSnapshotFile(path, v.Current()); err != nil {
		t.Fatalf("SaveSnapshotFile: %v", err)
	}
	resumed, err := WarmStart(path, v.Options())
	if err != nil {
		t.Fatalf("WarmStart: %v", err)
	}
	if resumed.Epoch() != 2 {
		t.Errorf("resumed epoch = %d, want 2 (delta numbering must continue)", resumed.Epoch())
	}
	if !resumed.Options().Symmetrize {
		t.Errorf("resumed options lost Symmetrize")
	}

	// Both services must serve byte-identical bodies for every kind.
	cold := New(Config{Workers: 2})
	defer cold.Close()
	warm := New(Config{Workers: 2})
	defer warm.Close()
	if err := cold.AddGraph("social", v); err != nil {
		t.Fatalf("AddGraph cold: %v", err)
	}
	if err := warm.AddGraph("social", resumed); err != nil {
		t.Fatalf("AddGraph warm: %v", err)
	}
	tsCold := httptest.NewServer(cold.Handler())
	defer tsCold.Close()
	tsWarm := httptest.NewServer(warm.Handler())
	defer tsWarm.Close()
	for _, path := range []string{
		"/query/pagerank?graph=social&iters=10&k=5",
		"/query/bfs?graph=social&source=1",
		"/query/cc?graph=social",
		"/query/tc?graph=social",
		"/query/datalog?graph=social&source=2",
	} {
		code, _, a := get(t, tsCold.URL+path, nil)
		if code != 200 {
			t.Fatalf("cold GET %s: status %d", path, code)
		}
		code, _, b := get(t, tsWarm.URL+path, nil)
		if code != 200 {
			t.Fatalf("warm GET %s: status %d", path, code)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s: warm-started body differs\ncold: %s\nwarm: %s", path, a, b)
		}
	}

	// A delta on the resumed graph continues the epoch sequence.
	snap, _, _, err := resumed.ApplyDelta([]graph.Edge{{Src: 10, Dst: 11}})
	if err != nil {
		t.Fatalf("ApplyDelta on resumed: %v", err)
	}
	if snap.Epoch() != 3 {
		t.Errorf("post-resume delta epoch = %d, want 3", snap.Epoch())
	}
}

func TestWarmStartErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := WarmStart(filepath.Join(dir, "missing.snap"), graph.DeltaOptions{}); err == nil {
		t.Error("WarmStart on a missing file should fail")
	}
	if _, err := LoadSnapshotFile(filepath.Join(dir, "missing.snap")); err == nil {
		t.Error("LoadSnapshotFile on a missing file should fail")
	}
	// Corrupt blob.
	bad := filepath.Join(dir, "bad.snap")
	if err := os.WriteFile(bad, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshotFile(bad); err == nil {
		t.Error("LoadSnapshotFile on garbage should fail")
	}
	if _, err := graph.ResumeVersioned(nil, graph.DeltaOptions{}); err == nil {
		t.Error("ResumeVersioned(nil) should fail")
	}
}
