// Graphquery runs declarative Datalog queries over a social graph through
// graphmaze's SociaLite-style engine — the paper's "declarative
// programming" model (§3) as a standalone library feature. The rules below
// are the paper's own programs, compiled from source at run time.
package main

import (
	"fmt"
	"log"
	"sort"

	"graphmaze"
)

func main() {
	g, err := graphmaze.Dataset("facebook", graphmaze.ForBFS)
	if err != nil {
		log.Fatal(err)
	}
	tg, err := graphmaze.Dataset("facebook", graphmaze.ForTriangles)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("facebook stand-in: %d users, %d friendship edges\n\n", g.NumVertices, g.NumEdges())

	db := graphmaze.NewDatalog()
	db.AddEdgeTable("EDGE", g)
	db.AddEdgeTable("FRIENDS", tg)

	// Degree of every user: DEG(s, $SUM(1)).
	deg := db.AddTable("DEG", g.NumVertices)
	if err := db.Eval("DEG(s, $SUM(one)) :- EDGE(s, t), one = 1."); err != nil {
		log.Fatal(err)
	}
	type user struct {
		id  uint32
		val float64
	}
	var top []user
	deg.ForEach(func(k uint32, v float64) { top = append(top, user{k, v}) })
	sort.Slice(top, func(i, j int) bool { return top[i].val > top[j].val })
	fmt.Println("most-connected users (DEG(s, $SUM(1)) :- EDGE(s,t)):")
	for _, u := range top[:5] {
		fmt.Printf("  user %-6d %d friends\n", u.id, int(u.val))
	}

	// Triangles: the paper's three-way join, verbatim.
	tri := db.AddTable("TRIANGLE", 1)
	if err := db.Eval("TRIANGLE(0, $INC(1)) :- FRIENDS(x,y), FRIENDS(y,z), FRIENDS(x,z)."); err != nil {
		log.Fatal(err)
	}
	count, _ := tri.Get(0)
	fmt.Printf("\ntriangles (TRIANGLE(0, $INC(1)) :- FRIENDS(x,y), FRIENDS(y,z), FRIENDS(x,z)): %d\n", int64(count))

	// Recursive reachability: the paper's BFS rule, to fixpoint.
	dist := db.AddTable("BFS", g.NumVertices)
	dist.Set(top[0].id, 0)
	rounds, err := db.Fixpoint("BFS(t, $MIN(d)) :- BFS(s, d0), d = d0 + 1, EDGE(s, t).")
	if err != nil {
		log.Fatal(err)
	}
	reached := dist.Len()
	fmt.Printf("\nBFS from user %d (recursive $MIN rule): reached %d users in %d semi-naive rounds\n",
		top[0].id, reached, rounds)

	// Two-hop friend-of-friend counts for the hub.
	fof := db.AddTable("FOF", g.NumVertices)
	if err := db.Eval("FOF(x, $SUM(one)) :- EDGE(x, y), EDGE(y, z), one = 1."); err != nil {
		log.Fatal(err)
	}
	hops, _ := fof.Get(top[0].id)
	fmt.Printf("two-hop paths from user %d (FOF(x, $SUM(1)) :- EDGE(x,y), EDGE(y,z)): %d\n",
		top[0].id, int64(hops))
}
