// Package core defines the contract every graph-analytics engine in
// graphmaze implements: the four algorithms of the paper (PageRank, BFS,
// triangle counting, collaborative filtering), their options and results,
// and serial reference implementations used to cross-validate engines.
//
// The engines deliberately do NOT share kernels — each implements the
// algorithms through its own programming model, because the per-model
// overhead is the phenomenon the paper studies.
package core

import (
	"errors"
	"fmt"
	"math"

	"graphmaze/internal/cluster"
	"graphmaze/internal/graph"
	"graphmaze/internal/metrics"
	"graphmaze/internal/trace"
)

// Exec selects where an algorithm runs: in-process on the host (nil
// Cluster), or on a simulated multi-node cluster.
type Exec struct {
	// Cluster, when non-nil, requests a distributed run with the given
	// cluster configuration. Engines without multi-node support return
	// ErrSingleNodeOnly.
	Cluster *cluster.Config
	// Trace, when non-nil, receives the run's phase spans and counters
	// (per-iteration kernel spans, engine supersteps, scheduler lanes).
	// Engines thread it unconditionally; the nil tracer is a no-op whose
	// hot-path cost is one pointer check.
	Trace *trace.Tracer
}

// Tracer returns the run's tracer: the Exec-level one, or the cluster
// config's when only that was set. Nil when tracing is disabled.
func (e Exec) Tracer() *trace.Tracer {
	if e.Trace != nil {
		return e.Trace
	}
	if e.Cluster != nil {
		return e.Cluster.Trace
	}
	return nil
}

// ErrSingleNodeOnly is returned by engines (Galois) that have no
// multi-node implementation, matching the paper's Table 2.
var ErrSingleNodeOnly = errors.New("engine runs on a single node only")

// ErrUnsupported is returned when a programming model cannot express the
// requested computation (e.g. SGD outside native/Galois, paper §3.2).
var ErrUnsupported = errors.New("operation not expressible in this engine's programming model")

// RunStats describes how a run went. For single-node runs WallSeconds is
// measured host time; for cluster runs it is the simulation's modeled time
// and Report carries the system metrics.
type RunStats struct {
	WallSeconds float64
	Simulated   bool
	Iterations  int
	Report      metrics.Report
}

// PageRankOptions configures PageRank. The paper's formulation (eq. 1):
//
//	PR'(i) = r + (1-r) · Σ_{j→i} PR(j)/outdeg(j)
//
// with r the random-jump probability (the paper uses 0.3) and unnormalized
// ranks initialized to 1.
type PageRankOptions struct {
	// RandomJump is r in the paper's equation (default 0.3).
	RandomJump float64
	// Iterations is the fixed iteration count (default 10). Engines report
	// per-iteration time, as the paper does, to normalize for convergence
	// detection differences.
	Iterations int
	// Tolerance, when positive, enables early convergence detection: the
	// run stops once no rank moves by more than Tolerance in an iteration
	// (the paper notes implementations differ on this, §5.2 — which is
	// why its comparisons use time per iteration).
	Tolerance float64
	Exec      Exec
}

func (o PageRankOptions) withDefaults() PageRankOptions {
	if o.RandomJump == 0 {
		o.RandomJump = 0.3
	}
	if o.Iterations == 0 {
		o.Iterations = 10
	}
	return o
}

// Validate reports the first problem with the options.
func (o PageRankOptions) Validate() error {
	if o.RandomJump < 0 || o.RandomJump >= 1 {
		return fmt.Errorf("core: random jump %v outside [0,1)", o.RandomJump)
	}
	if o.Iterations < 0 {
		return fmt.Errorf("core: negative iteration count %d", o.Iterations)
	}
	if o.Tolerance < 0 {
		return fmt.Errorf("core: negative tolerance %v", o.Tolerance)
	}
	return nil
}

// PageRankResult carries the final (unnormalized) ranks.
type PageRankResult struct {
	Ranks []float64
	Stats RunStats
}

// BFSOptions configures breadth-first search from Source over an
// undirected (symmetrized) graph.
type BFSOptions struct {
	Source uint32
	Exec   Exec
}

// BFSResult carries hop distances; unreachable vertices hold -1.
type BFSResult struct {
	Distances []int32
	Stats     RunStats
}

// TriangleOptions configures triangle counting. The input graph must be
// acyclically oriented (every edge small id → large id) with sorted
// adjacency, the preparation the paper applies to all frameworks (§4.1.2).
type TriangleOptions struct {
	Exec Exec
}

// TriangleResult carries the global triangle count.
type TriangleResult struct {
	Count int64
	Stats RunStats
}

// CFMethod selects the matrix-factorization optimizer.
type CFMethod int

const (
	// GradientDescent updates all factors once per iteration from
	// aggregated gradients — expressible in every framework (paper §3.2).
	GradientDescent CFMethod = iota
	// SGD processes ratings one at a time in random order. Only native and
	// Galois can express it (paper §3.2).
	SGD
)

func (m CFMethod) String() string {
	if m == SGD {
		return "sgd"
	}
	return "gd"
}

// CFOptions configures collaborative filtering (incomplete matrix
// factorization with regularization, paper eq. 4).
type CFOptions struct {
	Method CFMethod
	// K is the latent dimension (paper's message sizing implies K≈128; we
	// default to 16 at laptop scale).
	K int
	// Iterations of the optimizer (default 5).
	Iterations int
	// LearningRate is γ0; StepDecay is s in γt = γ0·s^t (defaults 0.002
	// and 0.99 for SGD; GD uses a smaller default rate).
	LearningRate float64
	StepDecay    float64
	// LambdaP and LambdaQ are the regularization weights (default 0.05).
	LambdaP, LambdaQ float64
	// Seed drives factor initialization and SGD shuffling.
	Seed int64
	// SkipRMSETrajectory suppresses the per-iteration RMSE evaluation
	// (an O(E·K) pass per iteration that is measurement noise, not
	// algorithm work); only the final RMSE is reported. The paper's
	// per-iteration timings exclude convergence evaluation.
	SkipRMSETrajectory bool
	Exec               Exec
}

func (o CFOptions) withDefaults() CFOptions {
	if o.K == 0 {
		o.K = 16
	}
	if o.Iterations == 0 {
		o.Iterations = 5
	}
	if o.LearningRate == 0 {
		if o.Method == SGD {
			o.LearningRate = 0.002
		} else {
			o.LearningRate = 0.0005
		}
	}
	if o.StepDecay == 0 {
		o.StepDecay = 0.99
	}
	if o.LambdaP == 0 {
		o.LambdaP = 0.05
	}
	if o.LambdaQ == 0 {
		o.LambdaQ = 0.05
	}
	return o
}

// Validate reports the first problem with the options.
func (o CFOptions) Validate() error {
	if o.K < 0 {
		return fmt.Errorf("core: negative latent dimension %d", o.K)
	}
	if o.Iterations < 0 {
		return fmt.Errorf("core: negative iteration count %d", o.Iterations)
	}
	if o.LearningRate < 0 || o.StepDecay < 0 || o.StepDecay > 1 {
		return fmt.Errorf("core: bad step schedule γ0=%v s=%v", o.LearningRate, o.StepDecay)
	}
	if o.LambdaP < 0 || o.LambdaQ < 0 {
		return fmt.Errorf("core: negative regularization")
	}
	return nil
}

// CFResult carries the learned factors (flat, K values per vertex) and the
// training-RMSE trajectory, one entry per iteration.
type CFResult struct {
	K           int
	UserFactors []float32 // NumUsers × K
	ItemFactors []float32 // NumItems × K
	RMSE        []float64
	Stats       RunStats
}

// Capabilities describes what an engine can do (paper Table 2).
type Capabilities struct {
	// MultiNode reports whether the engine has a distributed
	// implementation.
	MultiNode bool
	// SGD reports whether the programming model can express stochastic
	// gradient descent (needs flexible partitioning and immediate global
	// visibility of updates).
	SGD bool
	// ProgrammingModel is a short label: "native", "vertex", "sparse
	// matrix", "datalog", "task".
	ProgrammingModel string
}

// Engine is a graph-analytics framework under study.
type Engine interface {
	// Name is the framework's display name, matching the paper's tables.
	Name() string
	Capabilities() Capabilities

	PageRank(g *graph.CSR, opt PageRankOptions) (*PageRankResult, error)
	BFS(g *graph.CSR, opt BFSOptions) (*BFSResult, error)
	TriangleCount(g *graph.CSR, opt TriangleOptions) (*TriangleResult, error)
	CollabFilter(r *graph.Bipartite, opt CFOptions) (*CFResult, error)
}

// CheckPageRankInput validates common PageRank preconditions.
func CheckPageRankInput(g *graph.CSR, opt PageRankOptions) (PageRankOptions, error) {
	opt = opt.withDefaults()
	if err := opt.Validate(); err != nil {
		return opt, err
	}
	if g == nil {
		return opt, errors.New("core: nil graph")
	}
	return opt, nil
}

// CheckBFSInput validates common BFS preconditions.
func CheckBFSInput(g *graph.CSR, opt BFSOptions) (BFSOptions, error) {
	if g == nil {
		return opt, errors.New("core: nil graph")
	}
	if opt.Source >= g.NumVertices {
		return opt, fmt.Errorf("core: BFS source %d outside [0,%d)", opt.Source, g.NumVertices)
	}
	return opt, nil
}

// CheckTriangleInput validates common triangle-counting preconditions.
func CheckTriangleInput(g *graph.CSR, opt TriangleOptions) (TriangleOptions, error) {
	if g == nil {
		return opt, errors.New("core: nil graph")
	}
	if !g.SortedAdjacency() {
		return opt, errors.New("core: triangle counting requires sorted adjacency (build with SortAdjacency)")
	}
	return opt, nil
}

// CheckCFInput validates common collaborative-filtering preconditions.
func CheckCFInput(r *graph.Bipartite, opt CFOptions) (CFOptions, error) {
	opt = opt.withDefaults()
	if err := opt.Validate(); err != nil {
		return opt, err
	}
	if r == nil || r.ByUser == nil || r.ByItem == nil {
		return opt, errors.New("core: nil rating graph")
	}
	return opt, nil
}

// InitFactors deterministically initializes n×k latent factors in
// [0, 1/√k), the conventional non-negative warm start. Every engine uses
// this so cross-engine RMSE trajectories are comparable.
func InitFactors(n uint32, k int, seed int64) []float32 {
	f := make([]float32, int(n)*k)
	state := uint64(seed)*2862933555777941757 + 3037000493
	scale := float32(1) / float32(k)
	for i := range f {
		// xorshift64* keeps initialization free of math/rand allocation.
		state ^= state >> 12
		state ^= state << 25
		state ^= state >> 27
		u := float32(state>>40) / float32(1<<24)
		f[i] = u * scale
	}
	return f
}

// Dot returns the inner product of two K-length factor rows.
func Dot(a, b []float32) float64 {
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

// RMSE computes the root-mean-square training error of factor matrices
// over the rating graph.
func RMSE(r *graph.Bipartite, k int, userF, itemF []float32) float64 {
	var sum float64
	var n int64
	for u := uint32(0); u < r.NumUsers; u++ {
		adj, w := r.ByUser.Neighbors(u), r.ByUser.EdgeWeights(u)
		pu := userF[int(u)*k : int(u+1)*k]
		for i, v := range adj {
			qv := itemF[int(v)*k : int(v+1)*k]
			e := float64(w[i]) - Dot(pu, qv)
			sum += e * e
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(sum / float64(n))
}
