package backend

import (
	"math/bits"

	"graphmaze/internal/bitvec"
	"graphmaze/internal/trace"
)

// Traversal tuning constants, shared with the native engine's historical
// values so lowering changes nothing observable.
const (
	// serialGraphEdges: below this edge count the whole traversal runs on
	// one core — goroutine fan-out costs more than it saves.
	serialGraphEdges = 1 << 19
	// serialFrontierThreshold: a level with a smaller frontier expands
	// serially even on large graphs.
	serialFrontierThreshold = 512
	// frontierGrain is the dynamic chunk size for frontier expansion: the
	// per-vertex cost is its degree, which varies by orders of magnitude
	// on a power-law graph, so workers claim small chunks.
	frontierGrain = 128
)

// Traversal is the reusable direction-switching level-synchronous BFS
// kernel (the sparse-frontier half of the backend). Push levels expand
// the frontier claiming targets through the atomic visited bitset; pull
// levels scan unvisited vertices for a visited parent (chosen when the
// frontier's edge volume is a large fraction of the untraversed graph,
// the [28]-style heuristic the native engine always used). All scratch —
// visited bits, a pre-claim snapshot, both frontier buffers — is owned by
// the kernel and reused across levels and across Run calls.
//
// Distances are deterministic at any worker count because levels are
// synchronous: a vertex's distance is the level of the first wave that
// reaches it, independent of which worker claims it.
type Traversal struct {
	pool *Pool
	m    *Matrix
	// span names the per-level trace span ("native.bfs.level" when the
	// native engine drives the kernel).
	span string
	tr   *trace.Tracer

	visited  *bitvec.Vector
	snapshot []uint64
	frontier []uint32
	next     []uint32

	// tuning, overridable in tests to force specific kernels
	serialEdges    int64
	serialFrontier int
	forceDir       int // -1 auto (heuristic), 0 push, 1 pull

	// per-dispatch state
	dist  []int32
	level int32
}

// NewTraversal builds the kernel for m. spanName names the per-level
// trace span; tr may be nil.
func NewTraversal(pool *Pool, m *Matrix, spanName string, tr *trace.Tracer) *Traversal {
	return &Traversal{
		pool:           pool,
		m:              m,
		span:           spanName,
		tr:             tr,
		visited:        bitvec.New(m.NumRows),
		snapshot:       make([]uint64, (int(m.NumRows)+63)/64),
		serialEdges:    serialGraphEdges,
		serialFrontier: serialFrontierThreshold,
		forceDir:       -1,
	}
}

// Rebind points the traversal at a new epoch's matrix. Scratch (visited
// bits, snapshot words) is reused when the vertex space is unchanged and
// reallocated when the epoch grew it; frontier buffers adapt on use.
func (t *Traversal) Rebind(m *Matrix) {
	if m.NumRows != t.m.NumRows {
		t.visited = bitvec.New(m.NumRows)
		t.snapshot = make([]uint64, (int(m.NumRows)+63)/64)
	}
	t.m = m
}

func (t *Traversal) degree(v uint32) int64 { return t.m.Offsets[v+1] - t.m.Offsets[v] }

func (t *Traversal) row(v uint32) []uint32 { return t.m.Cols[t.m.Offsets[v]:t.m.Offsets[v+1]] }

// Run traverses from source, writing levels into dist (len NumRows, must
// be prefilled with -1 except dist[source] = 0) and returns the number of
// levels. The kernel's scratch is reset internally, so Run may be called
// repeatedly.
func (t *Traversal) Run(dist []int32, source uint32) int {
	t.visited.Reset()
	t.visited.Set(source)
	t.dist = dist
	frontier := append(t.frontier[:0], source)
	level := int32(0)
	frontierEdges := t.degree(source)
	remaining := t.m.NNZ()

	if remaining < t.serialEdges {
		for len(frontier) > 0 {
			level++
			next := t.next[:0]
			for _, v := range frontier {
				for _, c := range t.row(v) {
					if !t.visited.Get(c) {
						t.visited.Set(c)
						dist[c] = level
						next = append(next, c)
					}
				}
			}
			frontier, t.next = next, frontier
		}
		t.frontier, t.dist = frontier, nil
		return int(level)
	}

	// Frontier-size distribution: levels span several orders of magnitude
	// on power-law graphs, and the histogram keeps that shape where the
	// per-level spans only keep instances.
	frontierHist := t.tr.Hist("backend.frontier_size")
	for len(frontier) > 0 {
		level++
		t.level = level
		frontierHist.Record(0, int64(len(frontier)))
		sp := t.tr.Begin(t.span, "bfs level").
			Arg("level", float64(level)).Arg("frontier", float64(len(frontier)))
		pull := frontierEdges*3 > remaining
		if t.forceDir >= 0 {
			pull = t.forceDir == 1
		}
		if pull {
			sp.Arg("direction", 1) // pull (bottom-up)
			frontier = t.pull(frontier)
		} else {
			sp.Arg("direction", 0) // push (top-down)
			frontier = t.push(frontier)
		}
		remaining -= frontierEdges
		frontierEdges = 0
		for _, v := range frontier {
			frontierEdges += t.degree(v)
		}
		sp.End()
	}
	t.frontier, t.dist = frontier, nil
	return int(level)
}

// push expands the frontier. Small frontiers run serially (discovery
// order); large ones claim dynamic chunks through the atomic bitset and
// the next frontier is materialized by diffing the visited words against
// a pre-expansion snapshot — ascending vertex order, no per-chunk staging
// buffers, deterministic at any worker count.
func (t *Traversal) push(frontier []uint32) []uint32 {
	next := t.next[:0]
	if len(frontier) < t.serialFrontier {
		for _, v := range frontier {
			for _, c := range t.row(v) {
				if !t.visited.Get(c) {
					t.visited.Set(c)
					t.dist[c] = t.level
					next = append(next, c)
				}
			}
		}
		t.next, t.frontier = frontier, nil
		return next
	}
	copy(t.snapshot, t.visited.Words())
	t.frontier = frontier
	t.pool.RunDynamic((*pushRunner)(t), len(frontier), frontierGrain)
	next = t.diffSnapshot(next)
	t.next, t.frontier = frontier, nil
	return next
}

// pushRunner is Traversal's push-phase chunkRunner ([lo, hi) indexes the
// frontier slice).
type pushRunner Traversal

func (p *pushRunner) runChunk(worker, lo, hi int) {
	t := (*Traversal)(p)
	for i := lo; i < hi; i++ {
		for _, c := range t.row(t.frontier[i]) {
			if t.visited.SetAtomic(c) {
				t.dist[c] = t.level
			}
		}
	}
}

// pull scans all vertices for an unvisited one with a frontier parent.
// Workers write only distances of distinct unvisited vertices (the
// visited bits are read-only during the scan); the next frontier and the
// bit updates are materialized afterwards by one pass over the distance
// array, keeping the parallel phase free of shared writes.
func (t *Traversal) pull(frontier []uint32) []uint32 {
	t.pool.RunDynamic((*pullRunner)(t), int(t.m.NumRows), 0)
	next := t.next[:0]
	for v := 0; v < int(t.m.NumRows); v++ {
		if t.dist[v] == t.level && !t.visited.Get(uint32(v)) {
			t.visited.Set(uint32(v))
			next = append(next, uint32(v))
		}
	}
	t.next = frontier
	return next
}

// pullRunner is Traversal's pull-phase chunkRunner ([lo, hi) is a vertex
// range).
type pullRunner Traversal

func (p *pullRunner) runChunk(worker, lo, hi int) {
	t := (*Traversal)(p)
	want := t.level - 1
	for v := lo; v < hi; v++ {
		if t.visited.Get(uint32(v)) {
			continue
		}
		for _, c := range t.row(uint32(v)) {
			if t.visited.Get(c) && t.dist[c] == want {
				t.dist[v] = t.level
				break
			}
		}
	}
}

// diffSnapshot appends, in ascending order, every vertex whose visited
// bit was set since the last snapshot copy.
func (t *Traversal) diffSnapshot(out []uint32) []uint32 {
	words := t.visited.Words()
	for w, cur := range words {
		diff := cur &^ t.snapshot[w]
		for diff != 0 {
			out = append(out, uint32(w*64+bits.TrailingZeros64(diff)))
			diff &= diff - 1
		}
	}
	return out
}

// Expander is the persistent-claims sparse expansion kernel: each Expand
// call claims the not-yet-claimed targets of the frontier and returns
// them. CombBLAS BFS (frontier = newly discovered vertices per level),
// Giraph's lowered BFS, and SociaLite's lowered recursive rules all
// reduce to exactly this operation. Claims persist across calls — the
// claimed set is the union of everything ever expanded or seeded via
// Claim.
type Expander struct {
	pool     *Pool
	m        *Matrix
	claimed  *bitvec.Vector
	snapshot []uint64
	frontier []uint32
	buf      []uint32
}

// NewExpander builds an expander over m with an empty claimed set.
func NewExpander(pool *Pool, m *Matrix) *Expander {
	return &Expander{
		pool:     pool,
		m:        m,
		claimed:  bitvec.New(m.NumRows),
		snapshot: make([]uint64, (int(m.NumRows)+63)/64),
	}
}

// Claim marks v as already reached, so expansion never emits it.
func (e *Expander) Claim(v uint32) { e.claimed.Set(v) }

// Expand claims the unclaimed targets of the frontier's rows and appends
// them to out (which may be nil). Small frontiers expand serially in
// discovery order; large ones in parallel, returned in ascending order —
// callers treat the result as a set.
func (e *Expander) Expand(frontier []uint32, out []uint32) []uint32 {
	m := e.m
	if len(frontier) < serialFrontierThreshold {
		for _, v := range frontier {
			for _, c := range m.Cols[m.Offsets[v]:m.Offsets[v+1]] {
				if !e.claimed.Get(c) {
					e.claimed.Set(c)
					out = append(out, c)
				}
			}
		}
		return out
	}
	copy(e.snapshot, e.claimed.Words())
	e.frontier = frontier
	e.pool.RunDynamic(e, len(frontier), frontierGrain)
	e.frontier = nil
	words := e.claimed.Words()
	for w, cur := range words {
		diff := cur &^ e.snapshot[w]
		for diff != 0 {
			out = append(out, uint32(w*64+bits.TrailingZeros64(diff)))
			diff &= diff - 1
		}
	}
	return out
}

func (e *Expander) runChunk(worker, lo, hi int) {
	m := e.m
	for i := lo; i < hi; i++ {
		v := e.frontier[i]
		for _, c := range m.Cols[m.Offsets[v]:m.Offsets[v+1]] {
			e.claimed.SetAtomic(c)
		}
	}
}

// ExpandInto is the serial one-shot expansion with caller-provided marks,
// preserving the exact discovery-order contract of combblas.SpMSpV: emit
// each distinct target of the frontier once, in first-encounter order,
// and leave marks clean for the next call.
func ExpandInto(m *Matrix, frontier []uint32, marks []bool, out []uint32) []uint32 {
	base := len(out)
	for _, v := range frontier {
		for _, c := range m.Cols[m.Offsets[v]:m.Offsets[v+1]] {
			if !marks[c] {
				marks[c] = true
				out = append(out, c)
			}
		}
	}
	for _, c := range out[base:] {
		marks[c] = false
	}
	return out
}
