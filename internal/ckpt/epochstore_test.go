package ckpt

import (
	"testing"

	"graphmaze/internal/graph"
)

func versionedFixture(t *testing.T) *graph.Versioned {
	t.Helper()
	b := graph.NewBuilder(5)
	b.AddEdges([]graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}})
	g, err := b.Build(graph.BuildOptions{Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	v, err := graph.NewVersioned(g, graph.DeltaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestEpochStoreRoundTrip(t *testing.T) {
	v := versionedFixture(t)
	store := NewEpochStore(Config{})

	snap0 := v.Current()
	bytes0, cost, err := store.Save(snap0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if bytes0 <= 0 || cost <= 0 {
		t.Fatalf("save must report size and cost: %d bytes, %g s", bytes0, cost)
	}
	snap1, _, _, err := v.ApplyDelta([]graph.Edge{{Src: 3, Dst: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Save(snap1, 4); err != nil {
		t.Fatal(err)
	}

	if latest, ok := store.Latest(); !ok || latest != snap1.Epoch() {
		t.Fatalf("latest = %d/%v, want %d", latest, ok, snap1.Epoch())
	}
	// Restoring an older epoch is the whole point of keying by epoch.
	got, readCost, err := store.Load(snap0.Epoch(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if readCost <= 0 {
		t.Fatal("load must charge the cost model")
	}
	if got.Epoch() != snap0.Epoch() || got.NumEdges() != snap0.NumEdges() {
		t.Fatalf("restored epoch %d with %d edges, want %d with %d",
			got.Epoch(), got.NumEdges(), snap0.Epoch(), snap0.NumEdges())
	}
	a, b := snap0.CSR(), got.CSR()
	for u := uint32(0); u < a.NumVertices; u++ {
		an, bn := a.Neighbors(u), b.Neighbors(u)
		if len(an) != len(bn) {
			t.Fatalf("vertex %d degree %d, want %d", u, len(bn), len(an))
		}
		for i := range an {
			if an[i] != bn[i] {
				t.Fatalf("vertex %d adjacency diverges", u)
			}
		}
	}

	if _, _, err := store.Load(99, 4); err == nil {
		t.Fatal("loading an unstored epoch must fail")
	}
}

func TestEpochStoreStatsAndOverwrite(t *testing.T) {
	v := versionedFixture(t)
	store := NewEpochStore(Config{})
	if _, ok := store.Latest(); ok {
		t.Fatal("empty store must have no latest epoch")
	}
	n, _, err := store.Save(v.Current(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Save(v.Current(), 1); err != nil {
		t.Fatal(err)
	}
	bytes, writes := store.Stats()
	if writes != 2 {
		t.Fatalf("writes = %d, want 2", writes)
	}
	if bytes != n {
		t.Fatalf("overwrite must not double stored bytes: %d, want %d", bytes, n)
	}
}
