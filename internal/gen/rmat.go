// Package gen provides the deterministic synthetic data generators the
// paper uses for its scaling studies (§4.1.2): the Graph500 RMAT edge
// generator, and a power-law rating-matrix generator built by folding RMAT
// output into a bipartite users×items matrix.
package gen

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"graphmaze/internal/graph"
)

// RMATConfig parameterizes the recursive-matrix generator. A, B, and C are
// the quadrant probabilities (D = 1-A-B-C). The paper's presets:
//
//   - Graph500 default (PageRank/BFS): A=0.57, B=C=0.19
//   - Triangle counting (fewer triangles): A=0.45, B=C=0.15
//   - Collaborative filtering (Netflix-like tail): A=0.40, B=C=0.22
type RMATConfig struct {
	Scale    int   // number of vertices = 2^Scale
	NumEdges int64 // raw edges generated (before dedup)
	A, B, C  float64
	Seed     int64
	// Noise perturbs the quadrant probabilities at every level, as the
	// Graph500 reference generator does, to avoid ringing artifacts.
	Noise float64
	// PermuteVertices applies a pseudo-random relabeling so vertex id
	// carries no locality information.
	PermuteVertices bool
}

// Graph500Config returns the paper's default RMAT parameters at the given
// scale with edgeFactor edges per vertex (Graph500 uses 16).
func Graph500Config(scale int, edgeFactor int, seed int64) RMATConfig {
	return RMATConfig{
		Scale:           scale,
		NumEdges:        int64(edgeFactor) << uint(scale),
		A:               0.57,
		B:               0.19,
		C:               0.19,
		Seed:            seed,
		Noise:           0.05,
		PermuteVertices: true,
	}
}

// TriangleConfig returns the paper's triangle-counting RMAT parameters
// (A=0.45, B=C=0.15), which reduce the triangle count.
func TriangleConfig(scale int, edgeFactor int, seed int64) RMATConfig {
	c := Graph500Config(scale, edgeFactor, seed)
	c.A, c.B, c.C = 0.45, 0.15, 0.15
	return c
}

// RatingsRMATConfig returns the paper's collaborative-filtering RMAT
// parameters (A=0.40, B=C=0.22), whose degree-distribution tail tracks the
// Netflix dataset.
func RatingsRMATConfig(scale int, edgeFactor int, seed int64) RMATConfig {
	c := Graph500Config(scale, edgeFactor, seed)
	c.A, c.B, c.C = 0.40, 0.22, 0.22
	return c
}

// Validate reports the first problem with the configuration.
func (c RMATConfig) Validate() error {
	if c.Scale < 1 || c.Scale > 30 {
		return fmt.Errorf("gen: scale %d outside [1,30]", c.Scale)
	}
	if c.NumEdges < 0 {
		return fmt.Errorf("gen: negative edge count %d", c.NumEdges)
	}
	if c.A <= 0 || c.B < 0 || c.C < 0 || c.A+c.B+c.C >= 1 {
		return fmt.Errorf("gen: invalid quadrant probabilities A=%v B=%v C=%v", c.A, c.B, c.C)
	}
	return nil
}

// NumVertices reports 2^Scale.
func (c RMATConfig) NumVertices() uint32 { return uint32(1) << uint(c.Scale) }

// RMAT generates the configured edge list. Output is deterministic for a
// given configuration, independent of GOMAXPROCS: the edge stream is split
// into fixed chunks, each generated from a seed derived from (Seed, chunk).
func RMAT(cfg RMATConfig) ([]graph.Edge, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	edges := make([]graph.Edge, cfg.NumEdges)
	const chunkSize = 1 << 16
	numChunks := int((cfg.NumEdges + chunkSize - 1) / chunkSize)
	workers := runtime.GOMAXPROCS(0)
	if workers > numChunks {
		workers = numChunks
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	chunks := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ci := range chunks {
				lo := int64(ci) * chunkSize
				hi := lo + chunkSize
				if hi > cfg.NumEdges {
					hi = cfg.NumEdges
				}
				r := rand.New(rand.NewSource(mix(cfg.Seed, int64(ci))))
				for i := lo; i < hi; i++ {
					edges[i] = rmatEdge(r, cfg)
				}
			}
		}()
	}
	for ci := 0; ci < numChunks; ci++ {
		chunks <- ci
	}
	close(chunks)
	wg.Wait()

	if cfg.PermuteVertices {
		permuteEdges(edges, cfg.NumVertices(), cfg.Seed)
	}
	return edges, nil
}

// rmatEdge draws one edge by descending the recursive quadrant tree.
func rmatEdge(r *rand.Rand, cfg RMATConfig) graph.Edge {
	var src, dst uint32
	a, b, c := cfg.A, cfg.B, cfg.C
	for level := 0; level < cfg.Scale; level++ {
		al, bl, cl := a, b, c
		if cfg.Noise > 0 {
			// Symmetric noise keeps the expected parameters unchanged.
			al *= 1 + cfg.Noise*(2*r.Float64()-1)
			bl *= 1 + cfg.Noise*(2*r.Float64()-1)
			cl *= 1 + cfg.Noise*(2*r.Float64()-1)
		}
		u := r.Float64()
		src <<= 1
		dst <<= 1
		switch {
		case u < al:
			// top-left quadrant: no bits set
		case u < al+bl:
			dst |= 1
		case u < al+bl+cl:
			src |= 1
		default:
			src |= 1
			dst |= 1
		}
	}
	return graph.Edge{Src: src, Dst: dst}
}

// permuteEdges relabels vertices with a seeded Fisher–Yates permutation.
func permuteEdges(edges []graph.Edge, n uint32, seed int64) {
	perm := Permutation(n, seed)
	for i := range edges {
		edges[i].Src = perm[edges[i].Src]
		edges[i].Dst = perm[edges[i].Dst]
	}
}

// Permutation returns a deterministic pseudo-random permutation of
// [0, n).
func Permutation(n uint32, seed int64) []uint32 {
	perm := make([]uint32, n)
	for i := range perm {
		perm[i] = uint32(i)
	}
	r := rand.New(rand.NewSource(mix(seed, 0x9e3779b9)))
	r.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	return perm
}

// mix combines two 64-bit values into a well-spread seed (splitmix64
// finalizer).
func mix(a, b int64) int64 {
	z := uint64(a) + 0x9e3779b97f4a7c15*uint64(b+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
