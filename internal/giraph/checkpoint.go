package giraph

import (
	"fmt"

	"graphmaze/internal/codec"
)

// Superstep checkpointing (DESIGN.md §10). A snapshot is exactly the state
// Pregel's checkpoints carry at a superstep boundary: every vertex value,
// the halted bitset, the global aggregator counter, and the messages
// delivered but not yet consumed. Values and messages serialize through
// the job's EncodeValue/DecodeValue (they share types for the built-in
// algorithms: float64 for PageRank, int32 for BFS), framed with
// internal/codec's record primitives so a corrupt blob is an error, never
// a panic.

// snapshotState serializes the engine's inter-superstep state.
func snapshotState(job *Job, rt *runtime, values []any, inbox [][]any) ([]byte, error) {
	out := codec.AppendUint64(nil, uint64(rt.counter.Load()))
	out = codec.AppendUint64s(out, rt.halted.words)
	var err error
	for v, val := range values {
		if out, err = job.EncodeValue(out, val); err != nil {
			return nil, fmt.Errorf("giraph: encode value of vertex %d: %w", v, err)
		}
	}
	for v, msgs := range inbox {
		out = codec.AppendUvarint(out, uint64(len(msgs)))
		for _, m := range msgs {
			if out, err = job.EncodeValue(out, m); err != nil {
				return nil, fmt.Errorf("giraph: encode pending message for vertex %d: %w", v, err)
			}
		}
	}
	return out, nil
}

// restoreState rebuilds values (in place), the halted bitset, and the
// counter from a snapshot, returning the restored inbox.
func restoreState(job *Job, rt *runtime, values []any, data []byte) ([][]any, error) {
	counterBits, data, err := codec.Uint64(data)
	if err != nil {
		return nil, fmt.Errorf("giraph: restore counter: %w", err)
	}
	words, data, err := codec.Uint64s(data)
	if err != nil {
		return nil, fmt.Errorf("giraph: restore active set: %w", err)
	}
	if len(words) != len(rt.halted.words) {
		return nil, fmt.Errorf("giraph: snapshot has %d halted words, runtime has %d", len(words), len(rt.halted.words))
	}
	for i := range values {
		if values[i], data, err = job.DecodeValue(data); err != nil {
			return nil, fmt.Errorf("giraph: restore value of vertex %d: %w", i, err)
		}
	}
	inbox := make([][]any, len(values))
	for v := range inbox {
		count, rest, err := codec.Uvarint(data)
		if err != nil {
			return nil, fmt.Errorf("giraph: restore inbox of vertex %d: %w", v, err)
		}
		data = rest
		for j := uint64(0); j < count; j++ {
			var msg any
			if msg, data, err = job.DecodeValue(data); err != nil {
				return nil, fmt.Errorf("giraph: restore message %d of vertex %d: %w", j, v, err)
			}
			inbox[v] = append(inbox[v], msg)
		}
	}
	// Counter and active set commit only after the whole blob parsed (a
	// restore error aborts the run, so partially-restored values are moot).
	rt.counter.Store(int64(counterBits))
	copy(rt.halted.words, words)
	return inbox, nil
}

// Float64Codec returns EncodeValue/DecodeValue for float64-valued jobs
// (PageRank: values and messages are both ranks).
func Float64Codec() (func([]byte, any) ([]byte, error), func([]byte) (any, []byte, error)) {
	enc := func(dst []byte, v any) ([]byte, error) {
		f, ok := v.(float64)
		if !ok {
			return nil, fmt.Errorf("giraph: float64 codec got %T", v)
		}
		return codec.AppendFloat64(dst, f), nil
	}
	dec := func(data []byte) (any, []byte, error) {
		f, rest, err := codec.Float64(data)
		if err != nil {
			return nil, nil, err
		}
		return f, rest, nil
	}
	return enc, dec
}

// Int32Codec returns EncodeValue/DecodeValue for int32-valued jobs (BFS:
// values and messages are both distances).
func Int32Codec() (func([]byte, any) ([]byte, error), func([]byte) (any, []byte, error)) {
	enc := func(dst []byte, v any) ([]byte, error) {
		d, ok := v.(int32)
		if !ok {
			return nil, fmt.Errorf("giraph: int32 codec got %T", v)
		}
		return codec.AppendUint32(dst, uint32(d)), nil
	}
	dec := func(data []byte) (any, []byte, error) {
		u, rest, err := codec.Uint32(data)
		if err != nil {
			return nil, nil, err
		}
		return int32(u), rest, nil
	}
	return enc, dec
}
