package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCollectorBasics(t *testing.T) {
	c := NewCollector(4, 8, 1<<30)
	c.AddPhase(2.0, 1.5, 0.5, 16.0)
	c.AddPhase(1.0, 0.5, 0.5, 8.0)
	c.AddTraffic(1000, 2, 2000)
	c.AddTraffic(3000, 1, 1500)
	c.RecordMemory(0, 100)
	c.RecordMemory(1, 500)
	c.RecordMemory(1, 300) // lower: ignored

	r := c.Report()
	if r.SimulatedSeconds != 3.0 {
		t.Errorf("SimulatedSeconds = %v", r.SimulatedSeconds)
	}
	if r.ComputeSeconds != 2.0 || r.NetworkSeconds != 1.0 {
		t.Errorf("compute/network = %v/%v", r.ComputeSeconds, r.NetworkSeconds)
	}
	if r.BytesSent != 4000 || r.MessagesSent != 3 {
		t.Errorf("traffic = %d/%d", r.BytesSent, r.MessagesSent)
	}
	if r.PeakNetworkBandwidth != 2000 {
		t.Errorf("PeakNetworkBandwidth = %v", r.PeakNetworkBandwidth)
	}
	if r.MemoryFootprintBytes != 500 {
		t.Errorf("MemoryFootprintBytes = %d", r.MemoryFootprintBytes)
	}
	// util = 24 busy / (3s × 8 threads × 4 nodes) = 0.25
	if r.CPUUtilization != 0.25 {
		t.Errorf("CPUUtilization = %v, want 0.25", r.CPUUtilization)
	}
}

func TestCPUUtilizationCapped(t *testing.T) {
	c := NewCollector(1, 1, 0)
	c.AddPhase(1.0, 1.0, 0, 100)
	if r := c.Report(); r.CPUUtilization != 1 {
		t.Errorf("CPUUtilization = %v, want capped at 1", r.CPUUtilization)
	}
}

func TestEmptyReport(t *testing.T) {
	r := NewCollector(2, 4, 0).Report()
	if r.CPUUtilization != 0 || r.SimulatedSeconds != 0 {
		t.Errorf("empty report not zeroed: %+v", r)
	}
	if r.MemoryFraction() != 0 {
		t.Errorf("MemoryFraction with no capacity = %v", r.MemoryFraction())
	}
}

func TestMemoryFraction(t *testing.T) {
	c := NewCollector(1, 1, 1000)
	c.RecordMemory(0, 250)
	if f := c.Report().MemoryFraction(); f != 0.25 {
		t.Errorf("MemoryFraction = %v, want 0.25", f)
	}
}

func TestCollectorConcurrency(t *testing.T) {
	c := NewCollector(8, 4, 0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.AddTraffic(1, 1, 100)
				c.RecordMemory(n, int64(j))
			}
		}(i)
	}
	wg.Wait()
	r := c.Report()
	if r.BytesSent != 800 || r.MessagesSent != 800 {
		t.Errorf("concurrent traffic lost: %d/%d", r.BytesSent, r.MessagesSent)
	}
	if r.MemoryFootprintBytes != 99 {
		t.Errorf("MemoryFootprintBytes = %d, want 99", r.MemoryFootprintBytes)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		512:     "512B",
		2048:    "2.0KB",
		3 << 20: "3.0MB",
		5 << 30: "5.0GB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatBytesNegative(t *testing.T) {
	cases := map[int64]string{
		-512:     "-512B",
		-2048:    "-2.0KB",
		-5 << 30: "-5.0GB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
	// MinInt64 cannot be negated; it must still format, signed.
	got := FormatBytes(math.MinInt64)
	if !strings.HasPrefix(got, "-") || !strings.HasSuffix(got, "EB") {
		t.Errorf("FormatBytes(MinInt64) = %q", got)
	}
}

func TestFormatRate(t *testing.T) {
	cases := map[float64]string{
		0:               "0B/s",
		512.5:           "512B/s",
		2048:            "2.0KB/s",
		5.5e9:           "5.1GB/s",
		-2048:           "-2.0KB/s",
		1.5 * (1 << 40): "1.5TB/s",
	}
	for in, want := range cases {
		if got := FormatRate(in); got != want {
			t.Errorf("FormatRate(%v) = %q, want %q", in, got, want)
		}
	}
}

// TestReportStringFractionalBandwidth pins the String fix: a sub-GB/s peak
// rate must render as a rate, not truncate through an int64 byte count.
func TestReportStringFractionalBandwidth(t *testing.T) {
	r := Report{Nodes: 1, PeakNetworkBandwidth: 1536.0}
	if s := r.String(); !strings.Contains(s, "peakBW=1.5KB/s") {
		t.Errorf("String() = %q, want peakBW=1.5KB/s", s)
	}
}

func TestReportString(t *testing.T) {
	r := Report{Nodes: 4, SimulatedSeconds: 1.5, CPUUtilization: 0.5, BytesSent: 2048}
	s := r.String()
	for _, frag := range []string{"nodes=4", "cpu=50%", "2.0KB"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}

func TestFormatTable(t *testing.T) {
	reports := []Report{
		{CPUUtilization: 0.9, PeakNetworkBandwidth: 5e9, BytesSent: 100, MemoryFootprintBytes: 10, MemoryPerNode: 100},
		{CPUUtilization: 0.1, PeakNetworkBandwidth: 0.5e9, BytesSent: 400, MemoryFootprintBytes: 50, MemoryPerNode: 100},
	}
	out := FormatTable([]string{"native", "giraph"}, reports, 5.5e9)
	if !strings.Contains(out, "native") || !strings.Contains(out, "giraph") {
		t.Fatalf("table missing rows: %q", out)
	}
	if !strings.Contains(out, "100.0") { // giraph sends the max bytes
		t.Errorf("table missing normalized 100%% row: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Errorf("table has %d lines, want header + 2 rows", len(lines))
	}
}

// TestFormatTableZeroReference: a zero reference bandwidth must not divide
// by zero — the bandwidth column reads 0.
func TestFormatTableZeroReference(t *testing.T) {
	out := FormatTable([]string{"x"}, []Report{{PeakNetworkBandwidth: 5e9}}, 0)
	if !strings.Contains(out, "x") {
		t.Fatalf("table missing row: %q", out)
	}
	if strings.Contains(out, "Inf") || strings.Contains(out, "NaN") {
		t.Errorf("zero-reference table produced Inf/NaN: %q", out)
	}
}

// TestFormatTableEmpty: no reports yields just the header.
func TestFormatTableEmpty(t *testing.T) {
	out := FormatTable(nil, nil, 1e9)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1 || !strings.Contains(lines[0], "framework") {
		t.Errorf("empty table = %q", out)
	}
}

// TestFormatTableMissingLabels: more reports than labels must not panic;
// unlabeled rows get a placeholder.
func TestFormatTableMissingLabels(t *testing.T) {
	out := FormatTable([]string{"only"}, []Report{{}, {}}, 1e9)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("table has %d lines, want 3", len(lines))
	}
	if !strings.HasPrefix(lines[2], "?") {
		t.Errorf("unlabeled row = %q, want ? placeholder", lines[2])
	}
}

func TestMerge(t *testing.T) {
	a := NewCollector(4, 8, 1<<30)
	a.AddPhase(1, 0.75, 0.25, 8)
	a.AddTraffic(100, 2, 1000)
	a.RecordMemory(0, 50)
	a.RecordMemory(1, 500)

	b := NewCollector(4, 8, 1<<30)
	b.AddPhase(2, 1, 1, 16)
	b.AddTraffic(300, 1, 4000)
	b.RecordMemory(0, 200)
	b.RecordMemory(2, 30)

	a.Merge(b)
	r := a.Report()
	if r.SimulatedSeconds != 3 || r.ComputeSeconds != 1.75 || r.NetworkSeconds != 1.25 {
		t.Errorf("merged times = %+v", r)
	}
	if r.BytesSent != 400 || r.MessagesSent != 3 {
		t.Errorf("merged traffic = %d/%d", r.BytesSent, r.MessagesSent)
	}
	if r.PeakNetworkBandwidth != 4000 {
		t.Errorf("merged peakBW = %v", r.PeakNetworkBandwidth)
	}
	// Per-node maxes: node 0 → max(50,200)=200, node 1 → 500, node 2 → 30;
	// footprint is the overall max.
	if r.MemoryFootprintBytes != 500 {
		t.Errorf("merged footprint = %d", r.MemoryFootprintBytes)
	}
	// b is untouched.
	if br := b.Report(); br.BytesSent != 300 {
		t.Errorf("merge mutated source: %+v", br)
	}
}

func TestMergeNilAndSelf(t *testing.T) {
	c := NewCollector(1, 1, 0)
	c.AddTraffic(10, 1, 5)
	c.Merge(nil)
	c.Merge(c)
	if r := c.Report(); r.BytesSent != 10 || r.MessagesSent != 1 {
		t.Errorf("nil/self merge changed totals: %+v", r)
	}
}

// TestMergeConcurrent stresses Merge under the race detector: many
// per-shard collectors merging into one aggregate while it also receives
// direct observations.
func TestMergeConcurrent(t *testing.T) {
	agg := NewCollector(8, 4, 0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				shard := NewCollector(8, 4, 0)
				shard.AddPhase(0.01, 0.01, 0, 0.04)
				shard.AddTraffic(2, 1, float64(n*100+j))
				shard.RecordMemory(n, int64(j))
				agg.Merge(shard)
				agg.AddTraffic(1, 1, 0)
			}
		}(i)
	}
	wg.Wait()
	r := agg.Report()
	if r.BytesSent != 8*50*3 || r.MessagesSent != 8*50*2 {
		t.Errorf("concurrent merge lost traffic: %d/%d", r.BytesSent, r.MessagesSent)
	}
	if r.PeakNetworkBandwidth != 749 {
		t.Errorf("peakBW = %v, want 749", r.PeakNetworkBandwidth)
	}
	if r.MemoryFootprintBytes != 49 {
		t.Errorf("footprint = %d, want 49", r.MemoryFootprintBytes)
	}
}
