package giraph

import (
	"strings"
	"testing"

	"graphmaze/internal/ckpt"
	"graphmaze/internal/cluster"
	"graphmaze/internal/core"
	"graphmaze/internal/fault"
)

// TestPageRankSuperstepRecovery injects a crash mid-run with superstep
// checkpointing enabled and requires bit-identical ranks to the
// fault-free run — the Pregel determinism contract: a replayed
// superstep sees exactly the values, active set, and pending messages
// the checkpoint captured.
func TestPageRankSuperstepRecovery(t *testing.T) {
	g := fixtureDirected(t)
	base, err := New().PageRank(g, core.PageRankOptions{Iterations: 4,
		Exec: core.Exec{Cluster: &cluster.Config{Nodes: 4}}})
	if err != nil {
		t.Fatal(err)
	}

	plan, err := fault.ParsePlan("crash@3:n1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := New().PageRank(g, core.PageRankOptions{Iterations: 4,
		Exec: core.Exec{Cluster: &cluster.Config{Nodes: 4,
			Fault: plan, Ckpt: ckpt.Config{Interval: 2}}}})
	if err != nil {
		t.Fatal(err)
	}

	for i := range base.Ranks {
		if base.Ranks[i] != res.Ranks[i] {
			t.Fatalf("rank[%d] = %v after recovery, want %v (bit-identical)", i, res.Ranks[i], base.Ranks[i])
		}
	}
	if len(plan.Fired()) != 1 {
		t.Errorf("fired = %v, want exactly the crash", plan.Fired())
	}
	rep := res.Stats.Report
	if rep.Recoveries != 1 || rep.Checkpoints == 0 || rep.ReplayedPhases == 0 {
		t.Errorf("recovery accounting: %d recoveries, %d checkpoints, %d replayed",
			rep.Recoveries, rep.Checkpoints, rep.ReplayedPhases)
	}
	if rep.CheckpointSeconds <= 0 || rep.RecoverySeconds <= 0 {
		t.Errorf("checkpoint/recovery time not charged: %v / %v",
			rep.CheckpointSeconds, rep.RecoverySeconds)
	}
}

// TestBFSSuperstepRecovery does the same for BFS, whose pending
// messages are int32 distances serialized by Int32Codec.
func TestBFSSuperstepRecovery(t *testing.T) {
	g := fixtureUndirected(t)
	base, err := New().BFS(g, core.BFSOptions{Source: 7,
		Exec: core.Exec{Cluster: &cluster.Config{Nodes: 3}}})
	if err != nil {
		t.Fatal(err)
	}

	plan, err := fault.ParsePlan("crash@2:n0")
	if err != nil {
		t.Fatal(err)
	}
	res, err := New().BFS(g, core.BFSOptions{Source: 7,
		Exec: core.Exec{Cluster: &cluster.Config{Nodes: 3,
			Fault: plan, Ckpt: ckpt.Config{Interval: 1}}}})
	if err != nil {
		t.Fatal(err)
	}

	if !core.EqualDistances(base.Distances, res.Distances) {
		t.Error("distances after recovery differ from fault-free run")
	}
	if len(plan.Fired()) != 1 {
		t.Errorf("fired = %v, want exactly the crash", plan.Fired())
	}
	if rep := res.Stats.Report; rep.Recoveries != 1 {
		t.Errorf("Recoveries = %d, want 1", rep.Recoveries)
	}
}

// TestCheckpointNeedsCodec: jobs without EncodeValue/DecodeValue
// (triangle counting keeps per-vertex adjacency state with no codec)
// must refuse checkpointing up front rather than fail at save time.
func TestCheckpointNeedsCodec(t *testing.T) {
	g := fixtureAcyclic(t)
	_, err := New().TriangleCount(g, core.TriangleOptions{
		Exec: core.Exec{Cluster: &cluster.Config{Nodes: 4,
			Ckpt: ckpt.Config{Interval: 2}}}})
	if err == nil {
		t.Fatal("triangle count with checkpointing should fail: no value codec")
	}
	if !strings.Contains(err.Error(), "EncodeValue") {
		t.Errorf("error %q should name the missing codec hooks", err)
	}
}

// TestSnapshotRoundTrip exercises snapshotState/restoreState directly:
// counter, halted bitset, values, and pending messages all survive.
func TestSnapshotRoundTrip(t *testing.T) {
	enc, dec := Float64Codec()
	job := &Job{EncodeValue: enc, DecodeValue: dec}
	rt := &runtime{halted: newBvec(5)}
	rt.counter.Store(41)
	rt.halted.SetAtomic(2)
	rt.halted.SetAtomic(4)
	values := []any{0.5, 1.5, 2.5, 3.5, 4.5}
	inbox := [][]any{{0.25}, nil, {1.0, 2.0, 3.0}, nil, {9.0}}

	blob, err := snapshotState(job, rt, values, inbox)
	if err != nil {
		t.Fatal(err)
	}

	// Clobber the live state, then restore into it.
	rt2 := &runtime{halted: newBvec(5)}
	got := make([]any, 5)
	gotInbox, err := restoreState(job, rt2, got, blob)
	if err != nil {
		t.Fatal(err)
	}
	if rt2.counter.Load() != 41 {
		t.Errorf("counter = %d, want 41", rt2.counter.Load())
	}
	if !rt2.halted.Get(2) || !rt2.halted.Get(4) || rt2.halted.Get(0) {
		t.Error("halted bitset not restored")
	}
	for i, v := range values {
		if got[i] != v {
			t.Errorf("value[%d] = %v, want %v", i, got[i], v)
		}
	}
	for v := range inbox {
		if len(gotInbox[v]) != len(inbox[v]) {
			t.Fatalf("inbox[%d] has %d messages, want %d", v, len(gotInbox[v]), len(inbox[v]))
		}
		for j := range inbox[v] {
			if gotInbox[v][j] != inbox[v][j] {
				t.Errorf("inbox[%d][%d] = %v, want %v", v, j, gotInbox[v][j], inbox[v][j])
			}
		}
	}

	// Truncated blobs must error, never panic.
	for cut := 0; cut < len(blob); cut += 7 {
		if _, err := restoreState(job, &runtime{halted: newBvec(5)}, make([]any, 5), blob[:cut]); err == nil {
			t.Fatalf("restore of %d-byte prefix should fail", cut)
		}
	}
}
