package cluster

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"graphmaze/internal/ckpt"
	"graphmaze/internal/codec"
	"graphmaze/internal/fault"
)

// TestSendDoesNotAliasFirstPayload is the regression test for the Send
// append bug: appending a second payload into spare capacity of the first
// sender's backing array corrupted sibling slices sharing that array.
func TestSendDoesNotAliasFirstPayload(t *testing.T) {
	c, _ := New(testConfig(2))
	backing := []byte("abXY")
	first := backing[:2]   // "ab" with spare capacity over "XY"
	sibling := backing[2:] // the bytes an aliasing append would overwrite
	if err := c.RunPhase(func(n int) error {
		if n == 0 {
			c.Send(0, 1, first)
			c.Send(0, 1, []byte("cd"))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := c.Recv(1); len(got) != 1 || string(got[0]) != "abcd" {
		t.Errorf("Recv = %q, want \"abcd\"", got)
	}
	if string(sibling) != "XY" {
		t.Errorf("Send overwrote the first payload's sibling bytes: %q", sibling)
	}
}

func TestSendThirdAppendReusesOwnedBuffer(t *testing.T) {
	c, _ := New(testConfig(2))
	if err := c.RunPhase(func(n int) error {
		if n == 0 {
			c.Send(0, 1, []byte("a"))
			c.Send(0, 1, []byte("b"))
			c.Send(0, 1, []byte("c"))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := c.Recv(1); len(got) != 1 || string(got[0]) != "abc" {
		t.Errorf("Recv = %q, want \"abc\"", got)
	}
}

// TestComputeErrorCleanState covers RunPhase's clean-on-error contract:
// after a failed phase the outbox and accounted counters are cleared, the
// phase counter has advanced, and the next phase starts from a defined
// state.
func TestComputeErrorCleanState(t *testing.T) {
	c, _ := New(testConfig(2))
	boom := errors.New("boom")
	err := c.RunPhase(func(n int) error {
		c.Send(n, 1-n, []byte("stale"))
		c.Account(n, 1000, 1)
		if n == 1 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("RunPhase error = %v", err)
	}
	if c.Phases() != 1 {
		t.Errorf("failed phase did not advance counter: %d", c.Phases())
	}
	// The next phase must not deliver the aborted phase's sends or charge
	// its accounted traffic.
	before := c.Report().BytesSent
	if err := c.RunPhase(func(n int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := c.Recv(0); len(got) != 0 {
		t.Errorf("aborted phase leaked sends: %q", got)
	}
	if after := c.Report().BytesSent; after != before {
		t.Errorf("aborted phase leaked accounted traffic: %d -> %d", before, after)
	}
	if r := c.Report(); r.FailedPhases != 1 {
		t.Errorf("FailedPhases = %d, want 1", r.FailedPhases)
	}
}

func TestInjectedCrashSurfacesFaultError(t *testing.T) {
	cfg := testConfig(2)
	cfg.Fault = fault.NewPlan(fault.Event{Kind: fault.Crash, Phase: 1, Node: 1})
	c, _ := New(cfg)
	if err := c.RunPhase(func(n int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	computed := make([]bool, 2)
	err := c.RunPhase(func(n int) error { computed[n] = true; return nil })
	if !fault.IsInjected(err) {
		t.Fatalf("crash phase error = %v, want injected fault", err)
	}
	var fe *fault.Error
	if !errors.As(err, &fe) || fe.Kind != fault.Crash || fe.Node != 1 || fe.Phase != 1 {
		t.Errorf("fault error = %+v", fe)
	}
	if !computed[0] || computed[1] {
		t.Errorf("crash at node 1: computed = %v, want node 0 only", computed)
	}
	// Detection latency joins the virtual clock and the recovery tally.
	r := c.Report()
	if r.RecoverySeconds < fault.DefaultDetectSeconds {
		t.Errorf("RecoverySeconds = %v, want ≥ %v detect latency", r.RecoverySeconds, fault.DefaultDetectSeconds)
	}
	if r.SimulatedSeconds < r.RecoverySeconds {
		t.Errorf("detect latency not in SimulatedSeconds: %v < %v", r.SimulatedSeconds, r.RecoverySeconds)
	}
	// One-shot: the replayed phase (fresh index) runs clean.
	if err := c.RunPhase(func(n int) error { return nil }); err != nil {
		t.Errorf("phase after consumed crash failed: %v", err)
	}
}

func TestInjectedDropAbortsExchange(t *testing.T) {
	cfg := testConfig(3)
	cfg.Fault = fault.NewPlan(fault.Event{Kind: fault.Drop, Phase: 0, From: 0, To: 2})
	c, _ := New(cfg)
	err := c.RunPhase(func(n int) error {
		if n == 0 {
			c.Send(0, 1, []byte("ok"))
			c.Send(0, 2, []byte("doomed"))
		}
		return nil
	})
	var fe *fault.Error
	if !errors.As(err, &fe) || fe.Kind != fault.Drop || fe.Node != 0 || fe.To != 2 {
		t.Fatalf("drop error = %v", err)
	}
	// All-or-nothing: even the healthy 0→1 payload must not be delivered.
	if got := c.Recv(1); len(got) != 0 {
		t.Errorf("partial delivery after drop: %q", got)
	}
}

func TestStragglerStretchesPhase(t *testing.T) {
	run := func(factor float64) float64 {
		cfg := testConfig(2)
		if factor > 1 {
			cfg.Fault = fault.NewPlan(fault.Event{Kind: fault.Slow, Phase: 0, PhaseEnd: 10, Node: 0, Factor: factor})
		}
		c, _ := New(cfg)
		_ = c.RunPhase(func(n int) error {
			buf := make([]byte, 1<<16)
			for i := range buf {
				buf[i] = byte(i)
			}
			c.Send(n, 1-n, buf[:8])
			return nil
		})
		return c.Report().ComputeSeconds
	}
	slow, healthy := run(50), run(1)
	if slow <= healthy {
		t.Errorf("straggler compute %v not above healthy %v", slow, healthy)
	}
}

func TestDegradeStretchesNetwork(t *testing.T) {
	run := func(degraded bool) float64 {
		cfg := Config{Nodes: 2, ThreadsPerNode: 1, Comm: CommLayer{Name: "t", Bandwidth: 1e6}}
		if degraded {
			cfg.Fault = fault.NewPlan(fault.Event{Kind: fault.Degrade, Phase: 0, PhaseEnd: 0, Factor: 4})
		}
		c, _ := New(cfg)
		_ = c.RunPhase(func(n int) error {
			if n == 0 {
				c.Send(0, 1, make([]byte, 1e6))
			}
			return nil
		})
		return c.Report().NetworkSeconds
	}
	deg, healthy := run(true), run(false)
	if deg < 3.9*healthy {
		t.Errorf("degraded network %v not ~4× healthy %v", deg, healthy)
	}
}

// toyEngine is a minimal checkpointable engine: each step every node
// appends the step index to a shared log via message exchange.
type toyEngine struct {
	c   *Cluster
	log []uint32
}

func (e *toyEngine) step(i int) (bool, error) {
	err := e.c.RunPhase(func(n int) error {
		if n == 0 {
			e.c.Send(0, 1, []byte{byte(i)})
		}
		return nil
	})
	if err != nil {
		return false, err
	}
	for _, p := range e.c.Recv(1) {
		for _, b := range p {
			e.log = append(e.log, uint32(b))
		}
	}
	return i >= 5, nil
}

func (e *toyEngine) snapshot() ([]byte, error) {
	return codec.AppendUint32s(nil, e.log), nil
}

func (e *toyEngine) restore(data []byte) error {
	log, _, err := codec.Uint32s(data)
	if err != nil {
		return err
	}
	e.log = log
	return nil
}

func TestRecoveryProducesFaultFreeOutput(t *testing.T) {
	run := func(plan fault.Injector) ([]uint32, *Cluster) {
		cfg := testConfig(2)
		cfg.Fault = plan
		cfg.Ckpt = ckpt.Config{Interval: 2}
		c, _ := New(cfg)
		e := &toyEngine{c: c}
		rec := c.Recovery(e.snapshot, e.restore)
		if err := rec.Run(e.step); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return e.log, c
	}
	healthy, _ := run(nil)
	crashed, c := run(fault.NewPlan(fault.Event{Kind: fault.Crash, Phase: 3, Node: 1}))
	if !reflect.DeepEqual(healthy, crashed) {
		t.Errorf("recovered output %v != fault-free output %v", crashed, healthy)
	}
	r := c.Report()
	if r.Recoveries != 1 || r.FailedPhases != 1 {
		t.Errorf("Recoveries=%d FailedPhases=%d, want 1/1", r.Recoveries, r.FailedPhases)
	}
	if r.Checkpoints == 0 || r.CheckpointBytes == 0 || r.CheckpointSeconds <= 0 {
		t.Errorf("checkpoint accounting missing: %+v", r)
	}
	if r.RecoverySeconds <= 0 {
		t.Errorf("RecoverySeconds = %v", r.RecoverySeconds)
	}
	if r.ReplayedPhases < 1 {
		t.Errorf("ReplayedPhases = %d, want ≥1", r.ReplayedPhases)
	}
}

func TestRecoveryTimelineDeterministic(t *testing.T) {
	run := func() ([]fault.Event, int) {
		plan := fault.NewPlan(
			fault.Event{Kind: fault.Crash, Phase: 2, Node: 0},
			fault.Event{Kind: fault.Drop, Phase: 5, From: 0, To: 1},
		)
		cfg := testConfig(2)
		cfg.Fault = plan
		cfg.Ckpt = ckpt.Config{Interval: 1}
		c, _ := New(cfg)
		e := &toyEngine{c: c}
		if err := c.Recovery(e.snapshot, e.restore).Run(e.step); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return plan.Fired(), c.Report().Recoveries
	}
	firedA, recA := run()
	firedB, recB := run()
	if !reflect.DeepEqual(firedA, firedB) {
		t.Errorf("fired timelines diverged:\n%v\n%v", firedA, firedB)
	}
	if len(firedA) != 2 {
		t.Errorf("fired %d events, want both: %v", len(firedA), firedA)
	}
	if recA != 2 || recB != 2 {
		t.Errorf("recoveries = %d/%d, want 2", recA, recB)
	}
}

func TestRecoveryGivesUpAfterBound(t *testing.T) {
	cfg := testConfig(2)
	cfg.MaxRecoveries = 2
	cfg.Ckpt = ckpt.Config{Interval: 1}
	c, _ := New(cfg)
	boom := errors.New("persistent")
	steps := 0
	err := c.Recovery(
		func() ([]byte, error) { return []byte{1}, nil },
		func([]byte) error { return nil },
	).Run(func(i int) (bool, error) {
		steps++
		return false, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "giving up after 2 recoveries") {
		t.Errorf("error %q lacks recovery bound", err)
	}
	if steps != 3 { // initial attempt + 2 replays
		t.Errorf("step ran %d times, want 3", steps)
	}
}

func TestRecoveryWithoutCheckpointing(t *testing.T) {
	c, _ := New(testConfig(2)) // Ckpt.Interval 0
	boom := errors.New("boom")
	rec := c.Recovery(
		func() ([]byte, error) { return nil, errors.New("must not be called") },
		func([]byte) error { return errors.New("must not be called") },
	)
	if rec.Store() != nil {
		t.Error("disabled checkpointing produced a store")
	}
	err := rec.Run(func(i int) (bool, error) {
		if i == 2 {
			return false, boom
		}
		return false, nil
	})
	if !errors.Is(err, boom) || strings.Contains(err.Error(), "recover") {
		t.Errorf("error without checkpointing = %v, want plain boom", err)
	}
}

func TestRecoveryRestoresInbox(t *testing.T) {
	// The inbox at a step boundary is part of the checkpoint: a crash after
	// the exchange must replay with the checkpointed in-flight messages.
	cfg := testConfig(2)
	cfg.Fault = fault.NewPlan(fault.Event{Kind: fault.Crash, Phase: 2, Node: 0})
	cfg.Ckpt = ckpt.Config{Interval: 1}
	c, _ := New(cfg)
	var seen []string
	step := func(i int) (bool, error) {
		// Consume last phase's delivery, then send the next value.
		for _, p := range c.Recv(1) {
			seen = append(seen, string(p))
		}
		err := c.RunPhase(func(n int) error {
			if n == 0 {
				c.Send(0, 1, []byte{'a' + byte(i)})
			}
			return nil
		})
		if err != nil {
			return false, err
		}
		return i >= 3, nil
	}
	snapshot := func() ([]byte, error) {
		var out []byte
		for _, s := range seen {
			out = codec.AppendSection(out, []byte(s))
		}
		return out, nil
	}
	restore := func(data []byte) error {
		seen = nil
		for len(data) > 0 {
			sec, rest, err := codec.Section(data)
			if err != nil {
				return err
			}
			seen = append(seen, string(sec))
			data = rest
		}
		return nil
	}
	if err := c.Recovery(snapshot, restore).Run(step); err != nil {
		t.Fatal(err)
	}
	// Step 3's send is never consumed (the loop ends), so the fault-free
	// sequence is a, b, c — and only an inbox-carrying checkpoint replays
	// "b" correctly after the crash in step 2.
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(seen, want) {
		t.Errorf("seen = %v, want %v (inbox not restored?)", seen, want)
	}
}

func TestInboxSnapshotRoundTrip(t *testing.T) {
	c, _ := New(testConfig(3))
	_ = c.RunPhase(func(n int) error {
		if n == 0 {
			c.Send(0, 1, []byte("one"))
			c.Send(0, 2, []byte("two"))
		}
		if n == 2 {
			c.Send(2, 1, []byte("three"))
		}
		return nil
	})
	blob := c.snapshotInbox()
	want := [][]string{nil, {"one", "three"}, {"two"}}
	// Clobber then restore.
	c.inbox = make([][][]byte, 3)
	if err := c.restoreInbox(blob); err != nil {
		t.Fatal(err)
	}
	for n, wantMsgs := range want {
		got := c.Recv(n)
		if len(got) != len(wantMsgs) {
			t.Fatalf("node %d: %q, want %q", n, got, wantMsgs)
		}
		for i := range wantMsgs {
			if string(got[i]) != wantMsgs[i] {
				t.Errorf("node %d payload %d = %q, want %q", n, i, got[i], wantMsgs[i])
			}
		}
	}
	// Restored payloads must not alias the blob (the store retains the
	// blob; engines may mutate delivered payloads in place).
	for i := range blob {
		blob[i] = 0xee
	}
	if got := string(c.Recv(1)[0]); got != "one" {
		t.Errorf("restored payload aliases the checkpoint blob: %q", got)
	}
	// Truncated blobs error (or restore a shorter prefix), never panic.
	for cut := 0; cut < len(blob); cut++ {
		cc, _ := New(testConfig(3))
		_ = cc.restoreInbox(blob[:cut])
	}
	other, _ := New(testConfig(2))
	if err := other.restoreInbox(c.snapshotInbox()); err == nil {
		t.Error("restoreInbox accepted a snapshot for the wrong node count")
	}
}

func TestCheckpointBlobLayout(t *testing.T) {
	cfg := testConfig(2)
	cfg.Ckpt = ckpt.Config{Interval: 1}
	c, _ := New(cfg)
	rec := c.Recovery(
		func() ([]byte, error) { return []byte("engine-state"), nil },
		func([]byte) error { return nil },
	)
	_ = rec.Run(func(i int) (bool, error) { return true, nil })
	ck, ok := rec.Store().Latest()
	if !ok {
		t.Fatal("no checkpoint written")
	}
	engine, rest, err := codec.Section(ck.Data)
	if err != nil || !bytes.Equal(engine, []byte("engine-state")) {
		t.Errorf("engine section = %q, %v", engine, err)
	}
	if _, _, err := codec.Section(rest); err != nil {
		t.Errorf("inbox section: %v", err)
	}
}
