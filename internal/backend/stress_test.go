package backend

import (
	"sync"
	"testing"
)

// TestPoolStressRace hammers one shared pool from several goroutines —
// the mutex-serialized dispatch must keep concurrent kernel users safe —
// while each kernel itself fans work out over all pool workers. Run under
// -race (CI does); -short keeps the iteration count small there.
func TestPoolStressRace(t *testing.T) {
	g := testGraph(t, 9, 55, true)
	m := FromCSR(g)
	pool := NewPool(4)
	defer pool.Close()

	iters := 50
	if testing.Short() {
		iters = 10
	}

	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			x := randVec(g.NumVertices, int64(c))
			y := make([]float64, g.NumVertices)
			k := NewSumVecMul(pool, m)
			tv := NewTraversal(pool, m, "backend.bfs.level", nil)
			tv.serialEdges = 0
			tv.serialFrontier = 0
			dist := make([]int32, g.NumVertices)
			want := refSpMVSum(m, x)
			for i := 0; i < iters; i++ {
				k.Into(y, x)
				for j := range want {
					if y[j] != want[j] {
						t.Errorf("worker %d iter %d: SpMV drifted at %d", c, i, j)
						return
					}
				}
				for j := range dist {
					dist[j] = -1
				}
				dist[0] = 0
				tv.Run(dist, 0)
			}
		}(c)
	}
	wg.Wait()
}
