package socialite

import (
	"fmt"
	"testing"
)

// buildBFSRule compiles the recursive BFS rule over g's edge table with a
// fresh distance table seeded at source.
func buildBFSRule(t *testing.T, edge *EdgeTable, source uint32) *Rule {
	t.Helper()
	dist := NewVecTable("BFS", edge.NumKeys())
	dist.Put(source, Scalar(0))
	reg := NewRegistry()
	reg.Register(edge)
	reg.Register(dist)
	rule, err := Parse("BFS(t, $MIN(d)) :- BFS(s, d0), d = d0 + 1, EDGE(s, t).", reg)
	if err != nil {
		t.Fatal(err)
	}
	return rule
}

// TestLoweredBFSMatchesGeneric runs the recursive rule to fixpoint through
// the lowering and through EvalParallel and requires identical stored
// tuples and identical round counts.
func TestLoweredBFSMatchesGeneric(t *testing.T) {
	g := fixtureUndirected(t)
	edge := NewEdgeTable("EDGE", g)
	const source = 3

	genericRule := buildBFSRule(t, edge, source)
	delta := []uint32{source}
	genericRounds := 0
	for len(delta) > 0 {
		genericRounds++
		stats, err := EvalParallel(genericRule, 0, g.NumVertices, delta, nil, 0, true)
		if err != nil {
			t.Fatal(err)
		}
		delta = stats.Changed
	}

	loweredRule := buildBFSRule(t, edge, source)
	low, ok := LowerBFSRule(loweredRule)
	if !ok {
		t.Fatal("BFS rule did not lower")
	}
	defer low.Close()
	delta = []uint32{source}
	loweredRounds := 0
	for len(delta) > 0 {
		loweredRounds++
		next, ok := low.Round(delta)
		if !ok {
			t.Fatalf("lowering fell back on round %d", loweredRounds)
		}
		delta = next
	}

	if genericRounds != loweredRounds {
		t.Fatalf("round counts differ: generic %d, lowered %d", genericRounds, loweredRounds)
	}
	want := genericRule.Head.Table
	got := loweredRule.Head.Table
	if want.Len() != got.Len() {
		t.Fatalf("stored tuple counts differ: generic %d, lowered %d", want.Len(), got.Len())
	}
	want.ForEach(func(k uint32, v Value) {
		gv, present := got.Get(k)
		if !present || gv.S() != v.S() {
			t.Fatalf("key %d: generic %v, lowered %v (present=%v)", k, v, gv, present)
		}
	})
}

// TestLowerBFSRuleRejectsNonRecursive pins the shape checks: the PageRank
// rule (head table distinct from the driver, $SUM fold) must not lower.
func TestLowerBFSRuleRejectsNonRecursive(t *testing.T) {
	g := fixtureDirected(t)
	n := g.NumVertices
	outEdge := NewEdgeTable("OUTEDGE", g)
	outDeg := NewVecTable("OUTDEG", n)
	for v := uint32(0); v < n; v++ {
		outDeg.Put(v, Scalar(float64(g.Degree(v))))
	}
	rank := NewVecTable("RANK", n)
	reg := NewRegistry()
	reg.Register(outEdge)
	reg.Register(outDeg)
	reg.Register(rank)
	reg.Register(NewVecTable("RANK2", n))
	rule, err := Parse(fmt.Sprintf(
		"RANK2[n]($SUM(v)) :- RANK[s](v0), OUTDEG[s](d), v = (1-%g)*v0/d, OUTEDGE[s](n).", 0.3), reg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := LowerBFSRule(rule); ok {
		t.Fatal("non-recursive $SUM rule must not lower")
	}
}

// TestLoweredRoundFallsBackOnNonUniformDelta pins the runtime guard: a
// delta whose sources emit different head values must refuse to lower —
// without mutating the table — so the generic evaluator can re-run it.
func TestLoweredRoundFallsBackOnNonUniformDelta(t *testing.T) {
	g := fixtureUndirected(t)
	edge := NewEdgeTable("EDGE", g)
	rule := buildBFSRule(t, edge, 3)
	// A second seed at a different depth makes the first delta non-uniform.
	rule.Head.Table.Put(5, Scalar(7))
	low, ok := LowerBFSRule(rule)
	if !ok {
		t.Fatal("BFS rule did not lower")
	}
	defer low.Close()
	before := rule.Head.Table.Len()
	if _, ok := low.Round([]uint32{3, 5}); ok {
		t.Fatal("non-uniform delta must not lower")
	}
	if rule.Head.Table.Len() != before {
		t.Fatal("failed round mutated the head table")
	}
	if _, ok := low.Round([]uint32{3}); ok {
		t.Fatal("lowering must stay dead after a violation")
	}
}
