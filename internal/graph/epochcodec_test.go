package graph

import (
	"bytes"
	"testing"
)

func TestSnapshotCodecRoundTrip(t *testing.T) {
	g := buildSorted(t, 6, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {5, 1}}, BuildOptions{})
	v, err := NewVersioned(g, DeltaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	snap, _, _, err := v.ApplyDelta([]Edge{{1, 4}, {4, 5}})
	if err != nil {
		t.Fatal(err)
	}

	blob, err := EncodeSnapshot(nil, snap)
	if err != nil {
		t.Fatal(err)
	}
	got, rest, err := DecodeSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after frame", len(rest))
	}
	if got.Epoch() != snap.Epoch() {
		t.Fatalf("epoch %d, want %d", got.Epoch(), snap.Epoch())
	}
	a, b := snap.CSR(), got.CSR()
	if a.NumVertices != b.NumVertices || a.TargetSpace() != b.TargetSpace() ||
		a.SortedAdjacency() != b.SortedAdjacency() {
		t.Fatal("graph shape not preserved")
	}
	for i := range a.Offsets {
		if a.Offsets[i] != b.Offsets[i] {
			t.Fatalf("offsets diverge at %d", i)
		}
	}
	for i := range a.Targets {
		if a.Targets[i] != b.Targets[i] {
			t.Fatalf("targets diverge at %d", i)
		}
	}

	// Deterministic encoding: re-encoding the decoded snapshot is
	// bit-identical.
	blob2, err := EncodeSnapshot(nil, got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("re-encoding is not bit-identical")
	}
}

func TestSnapshotCodecRejectsWeighted(t *testing.T) {
	g, err := FromWeightedEdges(3, []WeightedEdge{{0, 1, 2.5}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EncodeSnapshot(nil, NewSnapshot(0, g)); err == nil {
		t.Fatal("weighted snapshot must be rejected")
	}
}

func TestSnapshotCodecCorruptInput(t *testing.T) {
	g := buildSorted(t, 4, []Edge{{0, 1}, {1, 2}}, BuildOptions{})
	blob, err := EncodeSnapshot(nil, NewSnapshot(3, g))
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation must error, never panic.
	for cut := 0; cut < len(blob); cut++ {
		if _, _, err := DecodeSnapshot(blob[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded", cut)
		}
	}
	// A frame whose arrays decode but describe an invalid CSR must fail
	// validation: point a target outside the vertex space.
	bad := append([]byte(nil), blob...)
	bad[len(bad)-1] = 0xEE
	if _, _, err := DecodeSnapshot(bad); err == nil {
		t.Fatal("out-of-range target decoded")
	}
	// Unknown version.
	verBad := append([]byte{0x7F}, blob[1:]...)
	if _, _, err := DecodeSnapshot(verBad); err == nil {
		t.Fatal("unknown codec version decoded")
	}
}
