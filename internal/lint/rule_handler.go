package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HandlerRule guards the serving layer's cancellation discipline. An HTTP
// handler in internal/serve that launches a kernel — anything that
// dispatches onto the shared backend pool — runs work whose cost is
// orders of magnitude above request parsing. If the handler never reads
// r.Context(), a disconnected client cannot be noticed anywhere: the
// admission queue keeps the abandoned request, the pool computes a result
// nobody will read, and under load-shed conditions that is exactly the
// work the service cannot afford. The rule flags handler-shaped functions
// (two parameters: http.ResponseWriter, *http.Request) in internal/serve
// that reach a kernel package (internal/backend, internal/native,
// internal/socialite, internal/par) through same-package calls without
// ever calling Context on their request parameter or handing the request
// to a helper.
type HandlerRule struct{}

// Name implements Rule.
func (r *HandlerRule) Name() string { return "handler" }

// Doc implements Rule.
func (r *HandlerRule) Doc() string {
	return "serve HTTP handlers that launch kernels must honor r.Context() cancellation"
}

// kernelPackage reports whether path names a package whose calls count as
// launching kernel work.
func kernelPackage(path string) bool {
	for _, suffix := range []string{
		"internal/backend",
		"internal/native",
		"internal/socialite",
		"internal/par",
	} {
		if strings.HasSuffix(path, suffix) {
			return true
		}
	}
	return false
}

// Check implements Rule.
func (r *HandlerRule) Check(p *Package, report func(pos token.Pos, format string, args ...any)) {
	if p.Rel != "internal/serve" {
		return
	}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			reqObj, ok := handlerRequestParam(p, fn)
			if !ok {
				continue
			}
			kernelPos := r.findKernelCall(p, fn, make(map[*types.Func]bool))
			if !kernelPos.IsValid() {
				continue
			}
			if honorsRequestContext(p, fn.Body, reqObj) {
				continue
			}
			report(fn.Pos(), "handler %s launches kernel work (line %d) but never reads its request context; call r.Context() so a disconnected client cancels instead of computing",
				fn.Name.Name, p.Fset.Position(kernelPos).Line)
		}
	}
}

// handlerRequestParam reports whether fn has the HTTP handler shape —
// exactly (http.ResponseWriter, *http.Request) parameters and no results
// — and returns the request parameter's object (nil for an unnamed
// parameter, which still counts as handler-shaped).
func handlerRequestParam(p *Package, fn *ast.FuncDecl) (types.Object, bool) {
	params := fn.Type.Params
	if params == nil || fn.Type.Results != nil {
		return nil, false
	}
	var idents []*ast.Ident
	var fields []*ast.Field
	for _, f := range params.List {
		if len(f.Names) == 0 {
			fields = append(fields, f)
			idents = append(idents, nil)
			continue
		}
		for _, name := range f.Names {
			fields = append(fields, f)
			idents = append(idents, name)
		}
	}
	if len(fields) != 2 {
		return nil, false
	}
	if !isNetHTTPType(p.Info.TypeOf(fields[0].Type), "ResponseWriter", false) {
		return nil, false
	}
	if !isNetHTTPType(p.Info.TypeOf(fields[1].Type), "Request", true) {
		return nil, false
	}
	if idents[1] == nil || idents[1].Name == "_" {
		return nil, true
	}
	return p.Info.Defs[idents[1]], true
}

// isNetHTTPType reports whether t is net/http's named type (optionally
// behind one pointer).
func isNetHTTPType(t types.Type, name string, wantPtr bool) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		if !wantPtr {
			return false
		}
		t = ptr.Elem()
	} else if wantPtr {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "net/http")
}

// findKernelCall returns the first position where fn (or a same-package
// function it statically calls, transitively) calls into a kernel
// package, or token.NoPos.
func (r *HandlerRule) findKernelCall(p *Package, fn *ast.FuncDecl, visited map[*types.Func]bool) token.Pos {
	if obj, ok := p.Info.Defs[fn.Name].(*types.Func); ok {
		if visited[obj] {
			return token.NoPos
		}
		visited[obj] = true
	}
	found := token.NoPos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found.IsValid() {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(p, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		if kernelPackage(callee.Pkg().Path()) {
			found = call.Pos()
			return false
		}
		if callee.Pkg() == p.Types {
			if decl := declOf(p, callee); decl != nil {
				if pos := r.findKernelCall(p, decl, visited); pos.IsValid() {
					found = pos
					return false
				}
			}
		}
		return true
	})
	return found
}

// declOf finds the declaration of a same-package function.
func declOf(p *Package, fn *types.Func) *ast.FuncDecl {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			d, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if p.Info.Defs[d.Name] == fn && d.Body != nil {
				return d
			}
		}
	}
	return nil
}

// honorsRequestContext reports whether body calls Context on the request
// parameter (ctx := r.Context(), r.Context().Err(), ...) or hands the
// request object onward to another function, delegating the decision.
func honorsRequestContext(p *Package, body *ast.BlockStmt, req types.Object) bool {
	if req == nil {
		return false
	}
	honored := false
	ast.Inspect(body, func(n ast.Node) bool {
		if honored {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Context" {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && p.Info.Uses[id] == req {
				honored = true
				return false
			}
		}
		// Passing r (or one of its fields, like r.Body) to a helper
		// delegates cancellation; only a bare kernel launch with the
		// request ignored is a sure miss.
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && p.Info.Uses[id] == req {
				honored = true
				return false
			}
		}
		return true
	})
	return honored
}
