package giraph

import (
	"errors"
	"testing"

	"graphmaze/internal/cluster"
	"graphmaze/internal/core"
	"graphmaze/internal/gen"
	"graphmaze/internal/graph"
)

func fixtureDirected(t testing.TB) *graph.CSR {
	t.Helper()
	edges, err := gen.RMAT(gen.Graph500Config(8, 8, 31))
	if err != nil {
		t.Fatal(err)
	}
	b := graph.NewBuilder(1 << 8)
	b.AddEdges(edges)
	g, err := b.Build(graph.BuildOptions{Dedup: true, DropSelfLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func fixtureUndirected(t testing.TB) *graph.CSR {
	t.Helper()
	edges, err := gen.RMAT(gen.Graph500Config(8, 8, 32))
	if err != nil {
		t.Fatal(err)
	}
	b := graph.NewBuilder(1 << 8)
	b.AddEdges(edges)
	g, err := b.Build(graph.BuildOptions{Orientation: graph.Symmetrize, Dedup: true, DropSelfLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func fixtureAcyclic(t testing.TB) *graph.CSR {
	t.Helper()
	edges, err := gen.RMAT(gen.TriangleConfig(8, 8, 33))
	if err != nil {
		t.Fatal(err)
	}
	b := graph.NewBuilder(1 << 8)
	b.AddEdges(edges)
	g, err := b.Build(graph.BuildOptions{Orientation: graph.OrientAcyclic, Dedup: true, SortAdjacency: true})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func fixtureRatings(t testing.TB) *graph.Bipartite {
	t.Helper()
	bp, err := gen.Ratings(gen.DefaultRatingsConfig(8, 16, 34))
	if err != nil {
		t.Fatal(err)
	}
	return bp
}

func TestIdentity(t *testing.T) {
	e := New()
	if e.Name() != "Giraph" {
		t.Errorf("Name = %q", e.Name())
	}
	if caps := e.Capabilities(); !caps.MultiNode || caps.SGD {
		t.Errorf("capabilities = %+v", caps)
	}
}

func TestPageRankMatchesReference(t *testing.T) {
	g := fixtureDirected(t)
	opt := core.PageRankOptions{Iterations: 6}
	want := core.RefPageRank(g, opt)
	res, err := New().PageRank(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if d := core.ComparePageRank(want, res.Ranks); d > 1e-9 {
		t.Errorf("max relative diff %v", d)
	}
}

func TestPageRankCluster(t *testing.T) {
	g := fixtureDirected(t)
	opt := core.PageRankOptions{Iterations: 4, Exec: core.Exec{Cluster: &cluster.Config{Nodes: 4}}}
	want := core.RefPageRank(g, core.PageRankOptions{Iterations: 4})
	res, err := New().PageRank(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if d := core.ComparePageRank(want, res.Ranks); d > 1e-9 {
		t.Errorf("max relative diff %v", d)
	}
	rep := res.Stats.Report
	if rep.BytesSent == 0 {
		t.Error("no traffic recorded")
	}
	if rep.PeakNetworkBandwidth > cluster.Netty().Bandwidth {
		t.Errorf("peak BW %v exceeds netty ceiling", rep.PeakNetworkBandwidth)
	}
	// 4 workers on 48 provisioned threads → low utilization by design.
	if rep.CPUUtilization > 0.25 {
		t.Errorf("CPU utilization %v unrealistically high for Giraph", rep.CPUUtilization)
	}
}

func TestBFSMatchesReference(t *testing.T) {
	g := fixtureUndirected(t)
	want := core.RefBFS(g, 7)
	res, err := New().BFS(g, core.BFSOptions{Source: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !core.EqualDistances(want, res.Distances) {
		t.Error("distances differ from reference")
	}
}

func TestBFSCluster(t *testing.T) {
	g := fixtureUndirected(t)
	want := core.RefBFS(g, 7)
	res, err := New().BFS(g, core.BFSOptions{Source: 7, Exec: core.Exec{Cluster: &cluster.Config{Nodes: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	if !core.EqualDistances(want, res.Distances) {
		t.Error("cluster distances differ from reference")
	}
}

func TestTriangleCountMatchesReference(t *testing.T) {
	g := fixtureAcyclic(t)
	want := core.RefTriangleCount(g)
	for _, e := range []*Engine{New(), NewUnsplit()} {
		res, err := e.TriangleCount(g, core.TriangleOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != want {
			t.Errorf("split=%d: count = %d, want %d", e.splitSupersteps, res.Count, want)
		}
	}
}

func TestTriangleClusterAndPhasedMemory(t *testing.T) {
	g := fixtureAcyclic(t)
	want := core.RefTriangleCount(g)

	run := func(e *Engine) *core.TriangleResult {
		res, err := e.TriangleCount(g, core.TriangleOptions{Exec: core.Exec{Cluster: &cluster.Config{Nodes: 4}}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != want {
			t.Fatalf("count = %d, want %d", res.Count, want)
		}
		return res
	}
	unsplit := run(NewUnsplit())
	split := run(New())
	// Phased supersteps must shrink the peak memory footprint (§6.1.3).
	if split.Stats.Report.MemoryFootprintBytes >= unsplit.Stats.Report.MemoryFootprintBytes {
		t.Errorf("phased supersteps did not reduce memory: %d vs %d",
			split.Stats.Report.MemoryFootprintBytes, unsplit.Stats.Report.MemoryFootprintBytes)
	}
}

func TestCollabFilterGD(t *testing.T) {
	bp := fixtureRatings(t)
	opt := core.CFOptions{K: 4, Iterations: 4, Seed: 5}
	res, err := New().CollabFilter(bp, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RMSE) != 4 {
		t.Fatalf("RMSE entries = %d", len(res.RMSE))
	}
	if !core.MonotonicallyNonIncreasing(res.RMSE, 1e-3) {
		t.Errorf("RMSE not decreasing: %v", res.RMSE)
	}
	// The BSP run must land where the synchronized-GD reference lands
	// (same update rule, same schedule, same seed).
	ref := core.RefCollabFilterGD(bp, opt)
	diff := res.RMSE[3] - ref.RMSE[3]
	if diff < 0 {
		diff = -diff
	}
	if diff > 1e-3 {
		t.Errorf("final RMSE %v vs reference %v", res.RMSE[3], ref.RMSE[3])
	}
}

func TestCollabFilterRejectsSGD(t *testing.T) {
	bp := fixtureRatings(t)
	if _, err := New().CollabFilter(bp, core.CFOptions{Method: core.SGD}); !errors.Is(err, core.ErrUnsupported) {
		t.Errorf("err = %v, want ErrUnsupported", err)
	}
}

func TestCollabFilterCluster(t *testing.T) {
	bp := fixtureRatings(t)
	res, err := New().CollabFilter(bp, core.CFOptions{K: 4, Iterations: 3, Seed: 5,
		Exec: core.Exec{Cluster: &cluster.Config{Nodes: 4}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Report.BytesSent == 0 {
		t.Error("no factor traffic recorded")
	}
	if !core.MonotonicallyNonIncreasing(res.RMSE, 1e-3) {
		t.Errorf("RMSE not decreasing: %v", res.RMSE)
	}
}

func TestRunQuiescence(t *testing.T) {
	// All vertices halt in superstep 0 with no messages → exactly 1
	// superstep.
	g, _ := graph.FromEdges(4, []graph.Edge{{Src: 0, Dst: 1}})
	job := &Job{
		Graph: g,
		Init:  func(uint32) any { return nil },
		Compute: func(ctx *Context, _ []any) {
			ctx.VoteToHalt()
		},
	}
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Supersteps != 1 {
		t.Errorf("supersteps = %d, want 1", res.Supersteps)
	}
}

func TestMessageReactivatesHaltedVertex(t *testing.T) {
	g, _ := graph.FromEdges(2, []graph.Edge{{Src: 0, Dst: 1}})
	var visits [2]int
	job := &Job{
		Graph:         g,
		Init:          func(uint32) any { return nil },
		MaxSupersteps: 3,
		Compute: func(ctx *Context, msgs []any) {
			visits[ctx.ID()]++
			if ctx.Superstep() == 0 && ctx.ID() == 0 {
				ctx.SendMessage(1, int32(99))
			}
			ctx.VoteToHalt()
		},
	}
	if _, err := Run(job); err != nil {
		t.Fatal(err)
	}
	// Vertex 1: superstep 0 (initially active) + superstep 1 (reactivated).
	if visits[1] != 2 {
		t.Errorf("vertex 1 visited %d times, want 2", visits[1])
	}
}

func TestPeakBufferedBytesTracked(t *testing.T) {
	g := fixtureDirected(t)
	job := &Job{
		Graph:         g,
		Init:          func(uint32) any { return nil },
		MaxSupersteps: 1,
		MessageBytes:  func(any) int { return 8 },
		Compute: func(ctx *Context, _ []any) {
			ctx.SendMessageToAllEdges(float64(1))
			ctx.VoteToHalt()
		},
	}
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	wantMin := g.NumEdges() * javaObjectOverhead
	if res.PeakBufferedBytes < wantMin {
		t.Errorf("PeakBufferedBytes = %d, want ≥ %d", res.PeakBufferedBytes, wantMin)
	}
}
