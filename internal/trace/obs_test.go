package trace

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestCounterAliasedWorkersExact pins the Counter mask-wrap contract:
// worker indices at or beyond the lane count alias onto existing lanes,
// and Value() still equals the exact sum of every Add because aliased
// workers land on the same atomic word. Run with -race this also proves
// the aliased path is data-race free.
func TestCounterAliasedWorkersExact(t *testing.T) {
	tr := New()
	c := tr.Counter("alias")
	lanes := len(c.Lanes())
	workers := 3*lanes + 1 // strictly more workers than lanes, not a multiple
	per := 10000
	if testing.Short() {
		per = 1000
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Add(w, 2)
			}
		}(w)
	}
	wg.Wait()
	want := int64(workers) * int64(per) * 2
	if got := c.Value(); got != want {
		t.Fatalf("aliased Value() = %d, want %d (workers=%d lanes=%d)", got, want, workers, lanes)
	}
	// The lane array must not have grown: aliasing wraps, it never resizes.
	if got := len(c.Lanes()); got != lanes {
		t.Fatalf("lane count changed under aliasing: %d -> %d", lanes, got)
	}
}

// TestTracerRegistryAndSpanHistograms checks the tracer's unified
// registry: counters are mirrored as counter funcs, and every ended span
// feeds the per-category duration histogram.
func TestTracerRegistryAndSpanHistograms(t *testing.T) {
	tr := New()
	if tr.Registry() == nil {
		t.Fatal("enabled tracer has no registry")
	}
	tr.Counter("x.count").Add(0, 5)
	for i := 0; i < 4; i++ {
		sp := tr.Begin("unit.test.iter", "iter")
		time.Sleep(100 * time.Microsecond)
		sp.End()
	}
	tr.RecordVirtual(PidNode(1), "unit.virtual", "phase", 0, 1.5, nil)

	hs := tr.Registry().HistSnapshots()
	if got := hs["unit.test.iter.dur_ns"]; got.Count != 4 {
		t.Fatalf("span hist count = %d, want 4 (%+v)", got.Count, hs)
	}
	if got := hs["unit.virtual.dur_ns"]; got.Count != 1 || got.Sum != 1_500_000_000 {
		t.Fatalf("virtual hist = %+v", got)
	}
	snap := tr.Registry().Snapshot()
	foundCounter := false
	for _, c := range snap.Counters {
		if c.Name == "x.count" && c.Value == 5 {
			foundCounter = true
		}
	}
	if !foundCounter {
		t.Fatalf("counter not mirrored into registry: %+v", snap.Counters)
	}

	s := Summarize(tr)
	if len(s.Histograms) == 0 {
		t.Fatal("summary has no histogram quantiles")
	}
	var sawIter bool
	for _, h := range s.Histograms {
		if h.Name == "unit.test.iter.dur_ns" {
			sawIter = true
			if h.Count != 4 || h.P50 <= 0 || h.P99 < h.P50 {
				t.Fatalf("iter quantiles implausible: %+v", h)
			}
		}
	}
	if !sawIter {
		t.Fatalf("summary missing iter histogram: %+v", s.Histograms)
	}
}

// TestNilTracerObsAccessors pins the disabled chain: nil tracer ->
// nil registry -> nil histogram, all inert and alloc-free.
func TestNilTracerObsAccessors(t *testing.T) {
	var tr *Tracer
	if tr.Registry() != nil || tr.Hist("x") != nil {
		t.Fatal("nil tracer leaked live obs handles")
	}
	if n := testing.AllocsPerRun(100, func() {
		tr.Hist("x").Record(1, 2)
		tr.Registry().Hist("y").Record(0, 1)
	}); n != 0 {
		t.Fatalf("disabled obs chain allocates %v per op", n)
	}
}

// TestSchedClaimHistogram checks Sched() wires the chunk-claim histogram.
func TestSchedClaimHistogram(t *testing.T) {
	tr := New()
	sc := tr.Sched()
	if sc.ClaimNS == nil {
		t.Fatal("Sched() did not create ClaimNS")
	}
	sc.ClaimNS.Record(runtime.GOMAXPROCS(0)+7, 42) // aliased worker must be safe
	if got := tr.Registry().HistSnapshots()["par.claim_ns"]; got.Count != 1 {
		t.Fatalf("claim hist = %+v", got)
	}
}
