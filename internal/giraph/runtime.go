// Package giraph reimplements Giraph's programming model (paper §3): bulk
// synchronous supersteps over vertex programs that exchange boxed
// messages. The runtime reproduces the design choices the paper blames for
// Giraph's 2–3 orders-of-magnitude gap: every message is a heap-allocated
// boxed object, all outgoing messages of a superstep are buffered before
// any delivery, only 4 workers run per node (memory pressure caps worker
// count, §5.4), and the wire goes through the low-bandwidth netty layer.
//
// The §6.1.3 mitigation is also implemented: phased supersteps process a
// fraction of the vertices at a time, trading barrier overhead for a
// bounded message-buffer footprint.
package giraph

import (
	"fmt"
	"sort"
	"sync/atomic"

	"graphmaze/internal/cluster"
	"graphmaze/internal/graph"
	"graphmaze/internal/par"
	"graphmaze/internal/trace"
)

// workersPerNode is Giraph's effective parallelism per node: memory limits
// cap it at 4 workers even on 24-core nodes (paper §5.4: "This limits the
// utilization to 4/24 ≈ 16%").
const workersPerNode = 4

// javaObjectOverhead models the per-message heap cost of a boxed Java
// object (header + reference + padding).
const javaObjectOverhead = 48

// messageEnvelopeBytes models Giraph's on-wire framing per message.
const messageEnvelopeBytes = 16

// Context is the view a vertex program gets of its vertex during Compute.
type Context struct {
	id     uint32
	worker int
	rt     *runtime
	value  any
}

// ID reports the vertex id.
func (c *Context) ID() uint32 { return c.id }

// Superstep reports the current superstep number (0-based).
func (c *Context) Superstep() int { return c.rt.superstep }

// NumVertices reports the graph's vertex count.
func (c *Context) NumVertices() uint32 { return c.rt.g.NumVertices }

// Value returns the vertex's current (boxed) value.
func (c *Context) Value() any { return c.value }

// SetValue replaces the vertex's value.
func (c *Context) SetValue(v any) { c.value = v }

// OutEdges returns the vertex's out-neighbour list.
func (c *Context) OutEdges() []uint32 { return c.rt.g.Neighbors(c.id) }

// EdgeWeights returns the weights parallel to OutEdges (nil if
// unweighted).
func (c *Context) EdgeWeights() []float32 { return c.rt.g.EdgeWeights(c.id) }

// SendMessage queues a boxed message for delivery at the next superstep.
func (c *Context) SendMessage(to uint32, msg any) {
	c.rt.send(c, to, msg)
}

// SendMessageToAllEdges queues msg for every out-neighbour.
func (c *Context) SendMessageToAllEdges(msg any) {
	for _, t := range c.rt.g.Neighbors(c.id) {
		c.rt.send(c, t, msg)
	}
}

// VoteToHalt marks the vertex inactive; a delivered message reactivates
// it.
func (c *Context) VoteToHalt() { c.rt.halted.SetAtomic(c.id) }

// AddToCounter accumulates into a named global aggregator (Giraph
// aggregators, used by triangle counting for the global sum).
func (c *Context) AddToCounter(delta int64) { c.rt.counter.Add(delta) }

// Computation is the user's Compute method: invoked once per active vertex
// per superstep with the messages delivered to it.
type Computation func(ctx *Context, messages []any)

// Job configures a BSP run.
type Job struct {
	Graph *graph.CSR
	// Init produces each vertex's initial value.
	Init func(id uint32) any
	// Compute is the vertex program.
	Compute Computation
	// MaxSupersteps bounds the run; 0 means run until global quiescence.
	MaxSupersteps int
	// MessageBytes models the wire size of a message payload.
	MessageBytes func(msg any) int
	// SplitSupersteps > 1 enables phased supersteps: each superstep's
	// vertex set is processed in this many chunks, bounding the message
	// buffer to roughly 1/SplitSupersteps of the full volume (§6.1.3).
	SplitSupersteps int
	// Combiner, when non-nil, merges messages addressed to the same
	// destination at the sender before buffering and transmission — the
	// paper's §6.2 roadmap recommendation for Giraph ("techniques to
	// reduce message buffer sizes ... avoiding duplicated communication").
	Combiner func(a, b any) any
	// Workers overrides the per-node worker count (default 4, Giraph's
	// memory-constrained configuration; §6.2 recommends raising it).
	Workers int
	// Cluster, when non-nil, runs distributed over a 1-D partition.
	Cluster *cluster.Cluster
	// EncodeValue and DecodeValue serialize one vertex value — and one
	// message, which shares the value's type for the built-in algorithms —
	// for superstep checkpointing (DESIGN.md §10). EncodeValue appends to
	// dst; DecodeValue consumes from data and returns the remainder. Both
	// are required when the cluster checkpoints (Ckpt.Interval > 0) and
	// ignored otherwise.
	EncodeValue func(dst []byte, v any) ([]byte, error)
	DecodeValue func(data []byte) (v any, rest []byte, err error)
	// Tracer, when non-nil, receives one span per superstep (active
	// vertices, messages, peak buffered bytes) plus message counters.
	Tracer *trace.Tracer
	// Lowered, when non-nil, supplies a backend lowering of the vertex
	// program (DESIGN.md §12). Run uses it only for local combiner-less
	// jobs — the distributed and combiner paths keep the stock superstep
	// machinery — and the lowering must be observationally equivalent to
	// running Compute (same values, counters, spans, supersteps).
	Lowered func() Lowering
}

type envelope struct {
	to  uint32
	msg any
}

type runtime struct {
	g         *graph.CSR
	job       *Job
	superstep int
	counter   atomic.Int64
	halted    *bvec

	// staging is per (node, worker): Compute on node n / worker w appends
	// only to staging[n*workers+w], so sends never race. With a Combiner,
	// stagingMap holds the per-destination combined message instead.
	staging    [][]envelope
	stagingMap []map[uint32]any
	workers    int
	nextInbox  [][]any
	part       *graph.Partition1D

	// bufferedBytes tracks the modeled heap held by buffered messages in
	// the current chunk; remoteBytes accumulates modeled wire traffic per
	// node. Both are typed atomics because per-worker Compute goroutines
	// update them concurrently while the superstep loop reads them.
	bufferedBytes atomic.Int64
	remoteBytes   []atomic.Int64
	baselineMem   []int64
}

// bvec is a tiny atomic bitset.
type bvec struct{ words []uint64 }

func newBvec(n uint32) *bvec { return &bvec{words: make([]uint64, (uint64(n)+63)/64)} }
func (b *bvec) Get(i uint32) bool {
	return atomic.LoadUint64(&b.words[i>>6])&(1<<(i&63)) != 0
}
func (b *bvec) SetAtomic(i uint32) {
	for {
		old := atomic.LoadUint64(&b.words[i>>6])
		if old&(1<<(i&63)) != 0 {
			return
		}
		if atomic.CompareAndSwapUint64(&b.words[i>>6], old, old|1<<(i&63)) {
			return
		}
	}
}
func (b *bvec) ClearAtomic(i uint32) {
	for {
		old := atomic.LoadUint64(&b.words[i>>6])
		if old&(1<<(i&63)) == 0 {
			return
		}
		if atomic.CompareAndSwapUint64(&b.words[i>>6], old, old&^(1<<(i&63))) {
			return
		}
	}
}

func (rt *runtime) send(ctx *Context, to uint32, msg any) {
	slot := ctx.worker
	if rt.job.Combiner != nil {
		m := rt.stagingMap[slot]
		if old, ok := m[to]; ok {
			// Combined in place: no additional buffer or wire cost.
			m[to] = rt.job.Combiner(old, msg)
			return
		}
		m[to] = msg
		size := int64(javaObjectOverhead)
		if rt.job.MessageBytes != nil {
			size += int64(rt.job.MessageBytes(msg))
		}
		rt.bufferedBytes.Add(size)
		if rt.part != nil {
			src, dst := rt.part.Owner(ctx.id), rt.part.Owner(to)
			if src != dst {
				wire := int64(messageEnvelopeBytes + 4)
				if rt.job.MessageBytes != nil {
					wire += int64(rt.job.MessageBytes(msg))
				}
				rt.remoteBytes[src].Add(wire)
			}
		}
		return
	}
	rt.staging[slot] = append(rt.staging[slot], envelope{to: to, msg: msg})
	size := int64(javaObjectOverhead)
	if rt.job.MessageBytes != nil {
		size += int64(rt.job.MessageBytes(msg))
	}
	rt.bufferedBytes.Add(size)
	if rt.part != nil {
		src, dst := rt.part.Owner(ctx.id), rt.part.Owner(to)
		if src != dst {
			wire := int64(messageEnvelopeBytes + 4)
			if rt.job.MessageBytes != nil {
				wire += int64(rt.job.MessageBytes(msg))
			}
			rt.remoteBytes[src].Add(wire)
		}
	}
}

// runLowered drives a Lowering through the same superstep loop the stock
// runtime uses: identical termination conditions (MaxSupersteps bound,
// quiescence when a message-free superstep leaves every vertex halted),
// identical per-superstep spans and counters.
func runLowered(job *Job) (*Result, error) {
	low := job.Lowered()
	defer low.Close()
	tr := job.Tracer
	activeCounter := tr.Counter("giraph.active_vertices")
	msgCounter := tr.Counter("giraph.messages")
	// Distribution views of the same signals: per-superstep message count
	// and buffered bytes, so the tail (the superstep that blew the buffer
	// budget) survives aggregation.
	msgHist := tr.Hist("giraph.superstep.messages")
	bufHist := tr.Hist("giraph.superstep.buffered_bytes")
	var peak int64
	var supersteps int
	lastMsgs := int64(0)
	for s := 0; ; s++ {
		if job.MaxSupersteps > 0 && s >= job.MaxSupersteps {
			break
		}
		if s > 0 && lastMsgs == 0 && low.AllHalted() {
			break
		}
		sp := tr.Begin("giraph.superstep", "superstep").Arg("superstep", float64(s))
		active, msgs := low.Step(s)
		buffered := low.BufferedBytes()
		activeCounter.Add(0, active)
		msgCounter.Add(0, msgs)
		sp.Arg("active", float64(active)).
			Arg("messages", float64(msgs)).
			Arg("buffered_bytes", float64(buffered)).End()
		msgHist.Record(0, msgs)
		bufHist.Record(0, buffered)
		if buffered > peak {
			peak = buffered
		}
		lastMsgs = msgs
		supersteps = s + 1
	}
	return &Result{Values: low.Values(), Supersteps: supersteps, PeakBufferedBytes: peak}, nil
}

// Result of a BSP run.
type Result struct {
	Values     []any
	Supersteps int
	Counter    int64
	// PeakBufferedBytes is the high-water modeled message-buffer size.
	PeakBufferedBytes int64
}

// Run executes the job.
func Run(job *Job) (*Result, error) {
	if job.Graph == nil {
		return nil, fmt.Errorf("giraph: nil graph")
	}
	if job.Lowered != nil && job.Cluster == nil && job.Combiner == nil {
		return runLowered(job)
	}
	split := job.SplitSupersteps
	if split < 1 {
		split = 1
	}
	g := job.Graph
	n := g.NumVertices

	workers := job.Workers
	if workers <= 0 {
		workers = workersPerNode
	}
	rt := &runtime{g: g, job: job, halted: newBvec(n), workers: workers}
	values := make([]any, n)
	for i := range values {
		values[i] = job.Init(uint32(i))
	}
	inbox := make([][]any, n)
	nodes := 1
	if job.Cluster != nil {
		nodes = job.Cluster.Nodes()
		part, err := graph.NewPartition1D(g, nodes)
		if err != nil {
			return nil, err
		}
		rt.part = part
		rt.remoteBytes = make([]atomic.Int64, nodes)
		rt.baselineMem = make([]int64, nodes)
		for node := 0; node < nodes; node++ {
			lo, hi := part.Range(node)
			edges := g.Offsets[hi] - g.Offsets[lo]
			// Java-ish resident cost: boxed vertex objects + edge store.
			rt.baselineMem[node] = edges*8 + int64(hi-lo)*64
			job.Cluster.SetBaselineMemory(node, rt.baselineMem[node])
		}
	}

	// computeSlice runs Compute over chunk[lo:hi] with Giraph's 4 workers,
	// staging sends into slots base..base+workers-1.
	computeSlice := func(chunk []uint32, base int) {
		par.ForWorkersIndexed(rt.workers, len(chunk), func(worker, lo, hi int) {
			for i := lo; i < hi; i++ {
				v := chunk[i]
				msgs := inbox[v]
				if len(msgs) > 0 {
					rt.halted.ClearAtomic(v)
				}
				ctx := &Context{id: v, worker: base + worker, rt: rt, value: values[v]}
				job.Compute(ctx, msgs)
				values[v] = ctx.value
				inbox[v] = nil
			}
		})
	}

	// Per-superstep observability: active-vertex and message counters plus
	// one span per superstep (real-time locally, virtual on a cluster).
	tr := job.Tracer
	activeCounter := tr.Counter("giraph.active_vertices")
	msgCounter := tr.Counter("giraph.messages")

	var peakBuffered int64
	var supersteps int
	// runStep executes superstep s and reports whether the run is done. A
	// Recovery can re-invoke it with the same s after rolling engine state
	// back to a checkpoint; everything the step touches is either rebuilt
	// per chunk (staging, bufferedBytes, nextInbox) or part of the snapshot
	// (values, halted, counter, inbox), so replays are exact.
	runStep := func(s int) (bool, error) {
		if job.MaxSupersteps > 0 && s >= job.MaxSupersteps {
			return true, nil
		}
		rt.superstep = s

		activeList := make([]uint32, 0, n)
		for v := uint32(0); v < n; v++ {
			if len(inbox[v]) > 0 || !rt.halted.Get(v) {
				activeList = append(activeList, v)
			}
		}
		if len(activeList) == 0 {
			return true, nil
		}
		activeCounter.Add(0, int64(len(activeList)))
		var stepSpan *trace.Span
		var stepVirtualStart float64
		if job.Cluster != nil {
			stepVirtualStart = job.Cluster.VirtualSeconds()
		} else {
			stepSpan = tr.Begin("giraph.superstep", "superstep").Arg("superstep", float64(s))
		}
		var stepMsgs, stepPeakBuffered int64
		rt.nextInbox = make([][]any, n)

		chunkSize := (len(activeList) + split - 1) / split
		for chunkStart := 0; chunkStart < len(activeList); chunkStart += chunkSize {
			chunkEnd := chunkStart + chunkSize
			if chunkEnd > len(activeList) {
				chunkEnd = len(activeList)
			}
			chunk := activeList[chunkStart:chunkEnd]
			if job.Combiner != nil {
				rt.stagingMap = make([]map[uint32]any, nodes*rt.workers)
				for i := range rt.stagingMap {
					rt.stagingMap[i] = make(map[uint32]any)
				}
			} else {
				rt.staging = make([][]envelope, nodes*rt.workers)
			}
			rt.bufferedBytes.Store(0)

			if job.Cluster != nil {
				err := job.Cluster.RunPhase(func(node int) error {
					// This node computes its owned slice of the chunk
					// (activeList is ascending, so the slice is a
					// contiguous subrange).
					lo, hi := rt.part.Range(node)
					a := sort.Search(len(chunk), func(i int) bool { return chunk[i] >= lo })
					b := sort.Search(len(chunk), func(i int) bool { return chunk[i] >= hi })
					computeSlice(chunk[a:b], node*rt.workers)
					if remote := rt.remoteBytes[node].Load(); remote > 0 {
						// Netty flushes per-destination buffers: the wire
						// sees batched transfers, not one round-trip per
						// vertex message.
						job.Cluster.Account(node, remote, int64(nodes-1))
						rt.remoteBytes[node].Store(0)
					}
					// Superstep barrier (zookeeper-style coordination).
					job.Cluster.Account(node, 16, 1)
					return nil
				})
				if err != nil {
					return false, err
				}
				// Buffered messages sit on-heap until the chunk flushes.
				if buffered := rt.bufferedBytes.Load(); buffered > 0 {
					perNode := buffered / int64(nodes)
					for node := 0; node < nodes; node++ {
						job.Cluster.RecordMemory(node, rt.baselineMem[node]+perNode)
					}
				}
			} else {
				computeSlice(chunk, 0)
			}
			buffered := rt.bufferedBytes.Load()
			if buffered > peakBuffered {
				peakBuffered = buffered
			}
			if buffered > stepPeakBuffered {
				stepPeakBuffered = buffered
			}
			// Flush: build the next inbox from the staged envelopes.
			if job.Combiner != nil {
				// Each slot map is flushed in sorted destination order:
				// checkpoints encode the inbox byte-for-byte, so the
				// flush order must not depend on map iteration order.
				for _, m := range rt.stagingMap {
					dests := make([]uint32, 0, len(m))
					for to := range m {
						dests = append(dests, to)
					}
					sort.Slice(dests, func(i, j int) bool { return dests[i] < dests[j] })
					for _, to := range dests {
						rt.nextInbox[to] = append(rt.nextInbox[to], m[to])
						stepMsgs++
					}
				}
				rt.stagingMap = nil
			} else {
				for _, worker := range rt.staging {
					for _, env := range worker {
						rt.nextInbox[env.to] = append(rt.nextInbox[env.to], env.msg)
					}
					stepMsgs += int64(len(worker))
				}
				rt.staging = nil
			}
		}
		msgCounter.Add(0, stepMsgs)
		if stepSpan != nil {
			stepSpan.Arg("active", float64(len(activeList))).
				Arg("messages", float64(stepMsgs)).
				Arg("buffered_bytes", float64(stepPeakBuffered)).End()
		} else if job.Cluster != nil {
			job.Tracer.RecordVirtual(trace.PidEngine, "giraph.superstep",
				fmt.Sprintf("superstep %d", s),
				stepVirtualStart, job.Cluster.VirtualSeconds()-stepVirtualStart,
				map[string]float64{
					"active":         float64(len(activeList)),
					"messages":       float64(stepMsgs),
					"buffered_bytes": float64(stepPeakBuffered),
				})
		}
		inbox = rt.nextInbox
		supersteps = s + 1
		return false, nil
	}

	if job.Cluster != nil {
		// The superstep loop runs under the cluster's recovery driver:
		// every Ckpt.Interval supersteps the vertex values, active set,
		// aggregator counter, and pending messages are checkpointed
		// (Pregel's scheme, which Giraph inherits), and an injected crash
		// rolls back and replays from the last snapshot.
		rec := job.Cluster.Recovery(
			func() ([]byte, error) { return snapshotState(job, rt, values, inbox) },
			func(data []byte) error {
				restored, err := restoreState(job, rt, values, data)
				if err != nil {
					return err
				}
				inbox = restored
				return nil
			})
		if rec.Store() != nil && (job.EncodeValue == nil || job.DecodeValue == nil) {
			return nil, fmt.Errorf("giraph: checkpointing (interval %d) needs EncodeValue/DecodeValue on the job",
				job.Cluster.Config().Ckpt.Interval)
		}
		if err := rec.Run(runStep); err != nil {
			return nil, err
		}
	} else {
		for {
			done, err := runStep(supersteps)
			if err != nil {
				return nil, err
			}
			if done {
				break
			}
		}
	}
	return &Result{Values: values, Supersteps: supersteps, Counter: rt.counter.Load(), PeakBufferedBytes: peakBuffered}, nil
}
