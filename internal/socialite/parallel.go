package socialite

import (
	"runtime"

	"graphmaze/internal/graph"
	"graphmaze/internal/par"
)

// This file implements SociaLite's intra-node parallel evaluation: tables
// are sharded, worker threads evaluate the rule over driver shards and
// route head updates to the shard that owns the key, and a second phase
// folds each shard's updates without locks (the paper: "SociaLite tables
// are horizontally partitioned, or sharded, to support parallelism").

// EvalStats summarizes one parallel evaluation for the distributed
// engine's traffic accounting.
type EvalStats struct {
	// Changed lists keys whose stored value changed (tracked only when
	// requested — drives semi-naive recursion).
	Changed []uint32
	// RemoteBytes and RemoteTuples count head updates whose key is owned
	// by a different cluster node than selfNode.
	RemoteBytes  int64
	RemoteTuples int64
}

type kv struct {
	key    uint32
	scalar float64
	vec    Value // nil for scalar emissions (stored inline, no alloc)
}

// EvalParallel evaluates the rule for driver keys/sources in [lo,hi)
// (restricted to delta when non-nil, for vec drivers) using sharded
// parallel evaluation, folding into the head table.
//
// owner, when non-nil, maps keys to cluster nodes; emissions owned by
// nodes other than selfNode are tallied in the returned stats (the data
// still folds — tables are shared in the simulation; the tally drives the
// modeled network).
func EvalParallel(rule *Rule, lo, hi uint32, delta []uint32, owner func(uint32) int, selfNode int, trackChanged bool) (EvalStats, error) {
	var stats EvalStats
	headKeys := rule.Head.Table.NumKeys()
	workers := runtime.GOMAXPROCS(0)
	if workers < 1 {
		workers = 1
	}

	// Global aggregates (single-key tables, e.g. TRIANGLE) fold into
	// per-worker partials merged at the end.
	global := headKeys == 1

	// Driver shard bounds.
	span := hi - lo
	if span == 0 {
		return stats, nil
	}
	if uint32(workers) > span {
		workers = int(span)
	}
	shardOf := func(key uint32) int {
		s := int(uint64(key) * uint64(workers) / uint64(headKeys))
		if s >= workers {
			s = workers - 1
		}
		return s
	}

	// Compiled fast path: SociaLite compiles rules to tight loops; the
	// common scalar shape (vec driver, key-local vec/let atoms, one edge
	// atom, scalar head) avoids the generic recursive evaluator entirely.
	if workers == 1 || global {
		// With a single worker (or a global aggregate) no routing is
		// needed: fold directly.
		st, err := evalDirect(rule, lo, hi, delta, owner, selfNode, trackChanged)
		return st, err
	}

	routed := make([][][]kv, workers) // [producer][consumerShard]
	globals := make([]float64, workers)
	// Each worker reports into its own slot: a single shared error variable
	// would be a write-write race across workers.
	workerErrs := make([]error, workers)
	par.ForWorkersIndexed(workers, workers, func(_, wlo, whi int) {
		for w := wlo; w < whi; w++ {
			buf := make([][]kv, workers)
			dlo := lo + graph.MustU32(int64(uint64(span)*uint64(w)/uint64(workers)))
			dhi := lo + graph.MustU32(int64(uint64(span)*uint64(w+1)/uint64(workers)))
			//lint:ignore hotalloc one sink closure per worker slot, not per element
			sink := func(key uint32, val Value) {
				if global {
					globals[w] += val.S()
					return
				}
				s := shardOf(key)
				e := kv{key: key}
				if len(val) == 1 {
					e.scalar = val[0]
				} else {
					e.vec = val
				}
				//lint:ignore hotalloc shard buffers are sparse; eager per-shard make would cost more than amortized growth
				buf[s] = append(buf[s], e)
			}
			var err error
			if rule.Driver.Vec != nil {
				err = rule.EvalVecDriver(dlo, dhi, delta, sink)
			} else {
				err = rule.EvalEdgeDriver(dlo, dhi, sink)
			}
			workerErrs[w] = err
			routed[w] = buf
		}
	})
	for _, err := range workerErrs {
		if err != nil {
			return stats, err
		}
	}

	if global {
		var total float64
		var tuples int64
		for _, g := range globals {
			total += g
			tuples += int64(g)
		}
		if total != 0 {
			rule.Head.Table.fold(rule.Head.Agg, 0, Scalar(total))
		}
		if owner != nil && owner(0) != selfNode && total != 0 {
			// Only the folded partial crosses the network.
			stats.RemoteBytes += 12
			stats.RemoteTuples++
		}
		return stats, nil
	}

	// Phase 2: shard owners fold their updates; no two workers touch the
	// same key.
	changedPer := make([][]uint32, workers)
	remoteBytes := make([]int64, workers)
	remoteTuples := make([]int64, workers)
	par.ForWorkersIndexed(workers, workers, func(_, wlo, whi int) {
		for s := wlo; s < whi; s++ {
			if trackChanged {
				total := 0
				for p := 0; p < workers; p++ {
					total += len(routed[p][s])
				}
				changedPer[s] = make([]uint32, 0, total)
			}
			for p := 0; p < workers; p++ {
				for _, u := range routed[p][s] {
					var changed bool
					width := 1
					if u.vec == nil {
						changed = rule.Head.Table.foldScalar(rule.Head.Agg, u.key, u.scalar)
					} else {
						changed = rule.Head.Table.fold(rule.Head.Agg, u.key, u.vec)
						width = len(u.vec)
					}
					if trackChanged && changed {
						changedPer[s] = append(changedPer[s], u.key)
					}
					if owner != nil && owner(u.key) != selfNode {
						remoteBytes[s] += int64(4 + 8*width)
						remoteTuples[s]++
					}
				}
			}
		}
	})
	for s := 0; s < workers; s++ {
		stats.Changed = append(stats.Changed, changedPer[s]...)
		stats.RemoteBytes += remoteBytes[s]
		stats.RemoteTuples += remoteTuples[s]
	}
	stats.Changed = dedup(stats.Changed)
	return stats, nil
}

// evalDirect evaluates without routing buffers, folding each emission
// immediately — the single-worker (and global-aggregate) path.
func evalDirect(rule *Rule, lo, hi uint32, delta []uint32, owner func(uint32) int, selfNode int, trackChanged bool) (EvalStats, error) {
	var stats EvalStats
	if compiled, ok := compileScalarRule(rule); ok {
		return compiled(lo, hi, delta, owner, selfNode, trackChanged)
	}
	sink := func(key uint32, val Value) {
		var changed bool
		width := len(val)
		if width == 1 {
			changed = rule.Head.Table.foldScalar(rule.Head.Agg, key, val[0])
		} else {
			changed = rule.Head.Table.fold(rule.Head.Agg, key, val)
		}
		if trackChanged && changed {
			stats.Changed = append(stats.Changed, key)
		}
		if owner != nil && owner(key) != selfNode {
			stats.RemoteBytes += int64(4 + 8*width)
			stats.RemoteTuples++
		}
	}
	var err error
	if rule.Driver.Vec != nil {
		err = rule.EvalVecDriver(lo, hi, delta, sink)
	} else {
		err = rule.EvalEdgeDriver(lo, hi, sink)
	}
	stats.Changed = dedup(stats.Changed)
	return stats, err
}

// compileScalarRule recognizes the hot rule shape — vec driver, key-local
// vec/let atoms, one trailing unweighted edge atom, scalar head keyed by
// the edge destination — and returns a specialized loop for it. This is
// the moral equivalent of SociaLite's rule-to-Java compilation: the
// loop-invariant prefix evaluates once per source, the inner loop is a
// plain scan over the adjacency list.
func compileScalarRule(rule *Rule) (func(lo, hi uint32, delta []uint32, owner func(uint32) int, selfNode int, trackChanged bool) (EvalStats, error), bool) {
	d := rule.Driver.Vec
	if d == nil || len(rule.Lets) != 0 || rule.Head.ValSlot < 0 {
		return nil, false
	}
	n := len(rule.Atoms)
	if n == 0 {
		return nil, false
	}
	last := rule.Atoms[n-1].Edge
	if last == nil || last.DstBound || last.WeightSlot >= 0 ||
		last.SrcSlot != d.KeySlot || rule.Head.KeySlot != last.DstSlot {
		return nil, false
	}
	prefix := rule.Atoms[:n-1]
	for _, a := range prefix {
		switch {
		case a.Vec != nil:
			if a.Vec.KeySlot != d.KeySlot {
				return nil, false
			}
		case a.Let != nil:
			if a.Let.FScalar == nil {
				return nil, false
			}
		default:
			return nil, false
		}
	}
	table := rule.Head.Table
	agg := rule.Head.Agg
	valSlot := rule.Head.ValSlot
	edge := last.Table

	return func(lo, hi uint32, delta []uint32, owner func(uint32) int, selfNode int, trackChanged bool) (EvalStats, error) {
		var stats EvalStats
		env := &Env{Keys: make([]uint32, rule.KeySlots), Vals: make([]Value, rule.ValSlots)}
		visit := func(src uint32) {
			v0, ok := d.Table.Get(src)
			if !ok {
				return
			}
			env.Keys[d.KeySlot] = src
			if d.ValSlot >= 0 {
				env.Vals[d.ValSlot] = v0
			}
			for _, a := range prefix {
				if a.Vec != nil {
					v, ok := a.Vec.Table.Get(src)
					if !ok {
						return
					}
					if a.Vec.ValSlot >= 0 {
						env.Vals[a.Vec.ValSlot] = v
					}
					continue
				}
				env.setScalar(a.Let.OutSlot, a.Let.FScalar(env))
			}
			val := env.Vals[valSlot][0]
			for _, dst := range edge.Neighbors(src) {
				if table.foldScalar(agg, dst, val) && trackChanged {
					stats.Changed = append(stats.Changed, dst)
				}
				if owner != nil && owner(dst) != selfNode {
					stats.RemoteBytes += 12
					stats.RemoteTuples++
				}
			}
		}
		if delta != nil {
			for _, key := range delta {
				if key >= lo && key < hi {
					visit(key)
				}
			}
		} else {
			for key := lo; key < hi; key++ {
				visit(key)
			}
		}
		stats.Changed = dedup(stats.Changed)
		return stats, nil
	}, true
}
