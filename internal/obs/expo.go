package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// promName sanitizes a dotted registry name into a Prometheus metric name:
// every character outside [a-zA-Z0-9_] becomes '_', and the namespace is
// prefixed ("par.claim_ns" -> "graphmaze_par_claim_ns").
func promName(namespace, name string) string {
	var b strings.Builder
	b.Grow(len(namespace) + 1 + len(name))
	b.WriteString(namespace)
	b.WriteByte('_')
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat formats a float the way Prometheus text format expects.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format under the given namespace. Counters get a _total suffix;
// histograms emit cumulative le buckets (only non-empty buckets plus the
// mandatory +Inf), _sum, and _count. The output is deterministic for a
// deterministic snapshot — the golden-file test pins it.
func WritePrometheus(w io.Writer, s *Snapshot, namespace string) error {
	if s == nil {
		return nil
	}
	for _, c := range s.Counters {
		n := promName(namespace, c.Name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		n := promName(namespace, g.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", n, n, promFloat(g.Value)); err != nil {
			return err
		}
	}
	for _, h := range s.Hists {
		n := promName(namespace, h.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		var cum int64
		for i, c := range h.Buckets {
			if c == 0 {
				continue
			}
			cum += c
			// le is the largest value this bucket holds (buckets span
			// [low, low+width) over integers, le bounds are inclusive).
			le := bucketLow(i) + bucketWidth(i) - 1
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", n, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			n, h.Count, n, h.Sum, n, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// jsonSnapshot is the expvar-style JSON shape: flat name->value maps for
// counters and gauges, name->quantile-summary for histograms. Maps
// marshal with sorted keys, so this is deterministic too.
type jsonSnapshot struct {
	Counters   map[string]int64     `json:"counters,omitempty"`
	Gauges     map[string]float64   `json:"gauges,omitempty"`
	Histograms map[string]Quantiles `json:"histograms,omitempty"`
}

// WriteJSON renders the snapshot as indented expvar-style JSON.
func WriteJSON(w io.Writer, s *Snapshot) error {
	out := jsonSnapshot{}
	if s != nil {
		if len(s.Counters) > 0 {
			out.Counters = make(map[string]int64, len(s.Counters))
			for _, c := range s.Counters {
				out.Counters[c.Name] = c.Value
			}
		}
		if len(s.Gauges) > 0 {
			out.Gauges = make(map[string]float64, len(s.Gauges))
			for _, g := range s.Gauges {
				out.Gauges[g.Name] = g.Value
			}
		}
		if len(s.Hists) > 0 {
			out.Histograms = make(map[string]Quantiles, len(s.Hists))
			for _, h := range s.Hists {
				out.Histograms[h.Name] = h.Summary()
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// HistStats converts a snapshot's histograms into a sorted list of named
// quantile summaries — the shape embedded in trace report summaries.
func HistStats(s *Snapshot) []NamedQuantiles {
	if s == nil {
		return nil
	}
	var out []NamedQuantiles
	for _, h := range s.Hists {
		if h.Count <= 0 {
			continue
		}
		out = append(out, NamedQuantiles{Name: h.Name, Quantiles: h.Summary()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// NamedQuantiles pairs a histogram name with its quantile summary.
type NamedQuantiles struct {
	Name string `json:"name"`
	Quantiles
}
