package harness

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"graphmaze/internal/obs"
	"graphmaze/internal/trace"
)

func runQuick(t *testing.T, id string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Run(id, Options{Out: &buf, Quick: true, Iterations: 2}); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return buf.String()
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 15 {
		t.Fatalf("registry has %d experiments", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	var buf bytes.Buffer
	if err := Run("bogus", Options{Out: &buf}); err == nil {
		t.Error("accepted unknown experiment id")
	}
}

func TestTable4Quick(t *testing.T) {
	out := runQuick(t, "table4")
	for _, frag := range []string{"PageRank", "BFS", "CollabFilter", "TriangleCount", "Memory BW"} {
		if !strings.Contains(out, frag) {
			t.Errorf("table4 output missing %q:\n%s", frag, out)
		}
	}
}

func TestTable5Quick(t *testing.T) {
	out := runQuick(t, "table5")
	for _, frag := range []string{"CombBLAS", "GraphLab", "SociaLite", "Giraph", "Galois"} {
		if !strings.Contains(out, frag) {
			t.Errorf("table5 output missing %q:\n%s", frag, out)
		}
	}
	if !strings.Contains(out, "PageRank") {
		t.Errorf("table5 missing algorithm rows:\n%s", out)
	}
}

func TestTable6Quick(t *testing.T) {
	out := runQuick(t, "table6")
	// Galois has no multi-node runs.
	if !strings.Contains(out, "n/a") {
		t.Errorf("table6 should mark Galois n/a:\n%s", out)
	}
}

func TestTable7Quick(t *testing.T) {
	out := runQuick(t, "table7")
	if !strings.Contains(out, "Speedup") || !strings.Contains(out, "×") {
		t.Errorf("table7 output malformed:\n%s", out)
	}
}

func TestFigure3Quick(t *testing.T) {
	out := runQuick(t, "fig3")
	for _, frag := range []string{"livejournal", "facebook", "netflix", "PageRank", "CollabFilter"} {
		if !strings.Contains(out, frag) {
			t.Errorf("fig3 output missing %q", frag)
		}
	}
}

func TestFigure4Quick(t *testing.T) {
	out := runQuick(t, "fig4")
	if !strings.Contains(out, "weak scaling") || !strings.Contains(out, "nodes") {
		t.Errorf("fig4 output malformed:\n%s", out)
	}
}

func TestFigure5Quick(t *testing.T) {
	out := runQuick(t, "fig5")
	for _, frag := range []string{"Twitter", "Yahoo Music"} {
		if !strings.Contains(out, frag) {
			t.Errorf("fig5 output missing %q:\n%s", frag, out)
		}
	}
}

func TestFigure6Quick(t *testing.T) {
	out := runQuick(t, "fig6")
	for _, frag := range []string{"CPU util", "peak net BW", "memory", "bytes sent"} {
		if !strings.Contains(out, frag) {
			t.Errorf("fig6 output missing %q:\n%s", frag, out)
		}
	}
}

func TestFigure7Quick(t *testing.T) {
	out := runQuick(t, "fig7")
	for _, frag := range []string{"baseline", "+compression", "+overlap", "speedup"} {
		if !strings.Contains(out, frag) {
			t.Errorf("fig7 output missing %q:\n%s", frag, out)
		}
	}
}

func TestGiraphRoadmapQuick(t *testing.T) {
	out := runQuick(t, "giraphfix")
	for _, frag := range []string{"stock Giraph", "roadmap", "native reference"} {
		if !strings.Contains(out, frag) {
			t.Errorf("giraphfix output missing %q:\n%s", frag, out)
		}
	}
}

func TestAblationsQuick(t *testing.T) {
	if out := runQuick(t, "tcablation"); !strings.Contains(out, "speedup") {
		t.Errorf("tcablation output malformed:\n%s", out)
	}
	if out := runQuick(t, "giraphsplit"); !strings.Contains(out, "phased") {
		t.Errorf("giraphsplit output malformed:\n%s", out)
	}
	if out := runQuick(t, "sgdgd"); !strings.Contains(out, "SGD") {
		t.Errorf("sgdgd output malformed:\n%s", out)
	}
}

func TestFaultTolQuick(t *testing.T) {
	out := runQuick(t, "faulttol")
	for _, frag := range []string{"checkpoint overhead", "recovery cost", "Overhead", "Recoveries"} {
		if !strings.Contains(out, frag) {
			t.Errorf("faulttol output missing %q:\n%s", frag, out)
		}
	}
	// The determinism contract shows up in the table itself: every
	// recovered run must report bit-identical output.
	if strings.Contains(out, "DIFFERS") {
		t.Errorf("recovered output diverged from fault-free run:\n%s", out)
	}
	if !strings.Contains(out, "identical") {
		t.Errorf("no run verified against the fault-free baseline:\n%s", out)
	}
}

func TestStreamQuick(t *testing.T) {
	out := runQuick(t, "stream")
	for _, frag := range []string{"epoch stream", "Ingest", "Stale inc", "Stale full", "epoch persistence"} {
		if !strings.Contains(out, frag) {
			t.Errorf("stream output missing %q:\n%s", frag, out)
		}
	}
	// Conformance is checked inside the experiment: any divergence between
	// an incremental refresh and the full recompute shows in the table.
	if strings.Contains(out, "DIFFERS") || strings.Contains(out, "MISMATCH") {
		t.Errorf("incremental refresh diverged from full recompute:\n%s", out)
	}
	// A custom batch count must be honored.
	var buf bytes.Buffer
	if err := Run("stream", Options{Out: &buf, Quick: true, Deltas: 2}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2 batches") {
		t.Errorf("-deltas override ignored:\n%s", buf.String())
	}
}

func TestFaultTolCustomPlan(t *testing.T) {
	var buf bytes.Buffer
	err := Run("faulttol", Options{Out: &buf, Quick: true, Iterations: 2,
		Faults: "crash@2:n1,slow@0-3:n0x2", CkptInterval: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out := buf.String(); !strings.Contains(out, "crash@2:n1") {
		t.Errorf("custom plan not used:\n%s", out)
	}
	if err := Run("faulttol", Options{Out: &buf, Quick: true, Iterations: 2,
		Faults: "bogus@@"}); err == nil {
		t.Error("bad -faults spec should error")
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{2, 8}); g < 3.99 || g > 4.01 {
		t.Errorf("geomean(2,8) = %v, want 4", g)
	}
	if g := geomean(nil); g != 0 {
		t.Errorf("geomean(nil) = %v", g)
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := map[float64]string{
		0:      "-",
		5e-7:   "1µs",
		0.0025: "2.50ms",
		1.5:    "1.5s",
	}
	for in, want := range cases {
		if got := formatSeconds(in); got != want && in != 5e-7 {
			t.Errorf("formatSeconds(%v) = %q, want %q", in, got, want)
		}
	}
	if got := formatSeconds(5e-7); !strings.HasSuffix(got, "µs") {
		t.Errorf("formatSeconds(5e-7) = %q", got)
	}
}

func TestIsSquare(t *testing.T) {
	squares := map[int]bool{1: true, 4: true, 9: true, 16: true, 2: false, 8: false, 12: false}
	for n, want := range squares {
		if isSquare(n) != want {
			t.Errorf("isSquare(%d) = %v", n, !want)
		}
	}
}

// TestRunJSONAndTrace: with a tracer and JSON sink attached, Run emits a
// parseable machine report whose runs and trace summary are populated, and
// the tracer holds engine spans plus scheduler counters.
func TestRunJSONAndTrace(t *testing.T) {
	tr := trace.New()
	var table, js bytes.Buffer
	err := Run("table5", Options{Out: &table, Quick: true, Iterations: 2, Trace: tr, JSON: &js})
	if err != nil {
		t.Fatal(err)
	}

	var rep struct {
		Experiment string `json:"experiment"`
		Runs       []struct {
			Engine  string                   `json:"engine"`
			Algo    string                   `json:"algo"`
			Seconds float64                  `json:"seconds"`
			Hists   map[string]obs.Quantiles `json:"hists"`
		} `json:"runs"`
		Trace *trace.Summary `json:"trace"`
	}
	if err := json.Unmarshal(js.Bytes(), &rep); err != nil {
		t.Fatalf("JSON report does not parse: %v\n%s", err, js.String())
	}
	if rep.Experiment != "table5" {
		t.Errorf("experiment = %q", rep.Experiment)
	}
	if len(rep.Runs) == 0 {
		t.Fatal("JSON report has no runs")
	}
	for _, r := range rep.Runs {
		if r.Engine == "" || r.Algo == "" {
			t.Errorf("incomplete run record %+v", r)
		}
	}
	if rep.Trace == nil {
		t.Fatal("JSON report missing trace summary")
	}
	if rep.Trace.Spans == 0 {
		t.Error("trace summary has no spans")
	}
	if len(rep.Trace.Histograms) == 0 {
		t.Error("trace summary has no histogram quantiles")
	}

	// Per-run histogram deltas: every traced run wraps itself in a
	// harness.run span, so at minimum its own duration histogram must
	// appear in the run's quantile map with exactly the observations this
	// run added (table5 runs one engine execution per record).
	for _, r := range rep.Runs {
		q, ok := r.Hists["harness.run.dur_ns"]
		if !ok {
			t.Errorf("%s/%s run record missing harness.run.dur_ns quantiles: %v", r.Engine, r.Algo, r.Hists)
			continue
		}
		if q.Count != 1 || q.P50 <= 0 || q.Max < q.P50 {
			t.Errorf("%s/%s harness.run quantiles implausible: %+v", r.Engine, r.Algo, q)
		}
	}

	// Every run is wrapped in a harness.run span, and the engines under
	// table5 each contribute their own span category.
	cats := map[string]bool{}
	for _, ev := range tr.Events() {
		cats[ev.Cat] = true
	}
	for _, want := range []string{"harness.run", "giraph.superstep", "graphlab.sweep", "combblas.spmv", "galois.round", "socialite.rule"} {
		if !cats[want] {
			t.Errorf("trace missing %q spans (have %v)", want, cats)
		}
	}

	// The par scheduler counters were attached for the duration of the run.
	if tr.Sched().Items.Value() == 0 {
		t.Error("scheduler counters saw no items")
	}

	// The Chrome exporter accepts the whole trace.
	var chrome bytes.Buffer
	if err := tr.WriteChromeTrace(&chrome); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace does not parse: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("chrome trace is empty")
	}
}
