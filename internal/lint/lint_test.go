package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// loadFixture type-checks an in-memory package rooted at the module-relative
// directory rel. Files maps base names to source text.
func loadFixture(t *testing.T, rel string, files map[string]string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	var parsed []*ast.File
	for name, src := range files {
		full := name
		if rel != "" {
			full = rel + "/" + name
		}
		f, err := parser.ParseFile(fset, full, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		parsed = append(parsed, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	path := "graphmaze"
	if rel != "" {
		path = "graphmaze/" + rel
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(path, fset, parsed, info)
	if err != nil {
		t.Fatalf("type-check fixture: %v", err)
	}
	return &Package{Rel: rel, Path: path, Fset: fset, Files: parsed, Types: tpkg, Info: info}
}

// runRule applies a single rule (plus directive processing) to the fixture.
func runRule(t *testing.T, p *Package, r Rule) []Finding {
	t.Helper()
	return Run([]*Package{p}, []Rule{r})
}

// wantFinding asserts exactly one finding at file:line for rule, and that
// its rendered form carries the [rule] tag.
func wantFinding(t *testing.T, findings []Finding, file string, line int, rule string) {
	t.Helper()
	if len(findings) != 1 {
		t.Fatalf("want exactly 1 finding, got %d: %v", len(findings), findings)
	}
	f := findings[0]
	if f.File != file || f.Line != line || f.Rule != rule {
		t.Fatalf("want %s:%d [%s], got %s:%d [%s] %s", file, line, rule, f.File, f.Line, f.Rule, f.Msg)
	}
	if !strings.Contains(f.String(), "["+rule+"]") || !strings.HasPrefix(f.String(), file+":") {
		t.Fatalf("rendered finding %q lacks file:line: [rule] shape", f.String())
	}
}

func TestAtomicRuleFlagsMixedAccess(t *testing.T) {
	p := loadFixture(t, "internal/fix", map[string]string{"a.go": `package fix

import "sync/atomic"

var counter int64

func Bump() { atomic.AddInt64(&counter, 1) }

func Read() int64 { return counter }
`})
	wantFinding(t, runRule(t, p, &AtomicRule{}), "internal/fix/a.go", 9, "atomic")
}

func TestAtomicRuleElementAccess(t *testing.T) {
	p := loadFixture(t, "internal/fix", map[string]string{"a.go": `package fix

import "sync/atomic"

func Fill(xs []int64) {
	atomic.AddInt64(&xs[0], 1)
	xs[1] = 2
	_ = xs // slice header use is fine
	for _, v := range xs {
		_ = v
	}
}
`})
	findings := runRule(t, p, &AtomicRule{})
	if len(findings) != 2 {
		t.Fatalf("want 2 findings (plain element write + element range), got %d: %v", len(findings), findings)
	}
	if findings[0].Line != 7 || findings[1].Line != 9 {
		t.Fatalf("want findings at lines 7 and 9, got %v", findings)
	}
}

func TestAtomicRuleCleanAllAtomic(t *testing.T) {
	p := loadFixture(t, "internal/fix", map[string]string{"a.go": `package fix

import "sync/atomic"

var counter int64

func Bump() { atomic.AddInt64(&counter, 1) }

func Read() int64 { return atomic.LoadInt64(&counter) }
`})
	if got := runRule(t, p, &AtomicRule{}); len(got) != 0 {
		t.Fatalf("all-atomic access should be clean, got %v", got)
	}
}

func TestAtomicRuleDistinctLocalsDoNotAlias(t *testing.T) {
	p := loadFixture(t, "internal/fix", map[string]string{"a.go": `package fix

import "sync/atomic"

func A() {
	var x int64
	atomic.AddInt64(&x, 1)
}

func B() {
	var x int64
	x = 2
	_ = x
}
`})
	if got := runRule(t, p, &AtomicRule{}); len(got) != 0 {
		t.Fatalf("distinct locals named x must not alias, got %v", got)
	}
}

func TestGoroutineRuleFlagsUnjoined(t *testing.T) {
	p := loadFixture(t, "internal/par", map[string]string{"a.go": `package par

func Leak() {
	go func() {}()
}
`})
	wantFinding(t, runRule(t, p, &GoroutineRule{}), "internal/par/a.go", 4, "goroutine")
}

func TestGoroutineRuleAcceptsJoins(t *testing.T) {
	p := loadFixture(t, "internal/par", map[string]string{"a.go": `package par

import "sync"

func Joined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done() }()
	wg.Wait()
}

func ChanJoined() {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
`})
	if got := runRule(t, p, &GoroutineRule{}); len(got) != 0 {
		t.Fatalf("joined goroutines should be clean, got %v", got)
	}
}

func TestGoroutineRuleSkipsNonEnginePackages(t *testing.T) {
	p := loadFixture(t, "internal/harness", map[string]string{"a.go": `package harness

func Leak() {
	go func() {}()
}
`})
	if got := runRule(t, p, &GoroutineRule{}); len(got) != 0 {
		t.Fatalf("rule must only apply to engine packages, got %v", got)
	}
}

func TestPanicRuleFlagsLibraryPanic(t *testing.T) {
	p := loadFixture(t, "internal/fix", map[string]string{"a.go": `package fix

func Convert(x int) int {
	if x < 0 {
		panic("negative")
	}
	return x
}
`})
	wantFinding(t, runRule(t, p, &PanicRule{}), "internal/fix/a.go", 5, "panic")
}

func TestPanicRuleAllowsBuilderPaths(t *testing.T) {
	p := loadFixture(t, "internal/fix", map[string]string{
		"a.go": `package fix

func MustConvert(x int) int {
	if x < 0 {
		panic("negative")
	}
	return x
}

func ValidateInput(x int) {
	if x < 0 {
		panic("negative")
	}
}
`,
		"builder.go": `package fix

func BuildThing(x int) int {
	if x < 0 {
		panic("negative")
	}
	return x
}
`})
	if got := runRule(t, p, &PanicRule{}); len(got) != 0 {
		t.Fatalf("Must*/Validate*/builder.go panics are allowed, got %v", got)
	}
}

func TestPanicRuleSkipsMainPackages(t *testing.T) {
	p := loadFixture(t, "cmd/tool", map[string]string{"main.go": `package main

func run() {
	panic("cli may die loudly")
}

func main() { run() }
`})
	if got := runRule(t, p, &PanicRule{}); len(got) != 0 {
		t.Fatalf("package main is exempt, got %v", got)
	}
}

func TestTruncateRuleFlags64BitNarrowing(t *testing.T) {
	p := loadFixture(t, "internal/graph", map[string]string{"a.go": `package graph

func Narrow(x int64) uint32 {
	return uint32(x)
}
`})
	wantFinding(t, runRule(t, p, &TruncateRule{}), "internal/graph/a.go", 4, "truncate")
}

func TestTruncateRuleFlagsLenNarrowing(t *testing.T) {
	p := loadFixture(t, "internal/gen", map[string]string{"a.go": `package gen

func Count(xs []byte) uint32 {
	return uint32(len(xs))
}
`})
	wantFinding(t, runRule(t, p, &TruncateRule{}), "internal/gen/a.go", 4, "truncate")
}

func TestTruncateRuleFlagsSignedIntNarrowing(t *testing.T) {
	p := loadFixture(t, "internal/galois", map[string]string{"a.go": `package galois

func Narrow(x int) int32 {
	return int32(x)
}
`})
	wantFinding(t, runRule(t, p, &TruncateRule{}), "internal/galois/a.go", 4, "truncate")
}

func TestTruncateRuleAllowsIdioms(t *testing.T) {
	p := loadFixture(t, "internal/graph", map[string]string{"a.go": `package graph

func Idioms(n uint32) []uint32 {
	out := make([]uint32, 0, n)
	for i := 0; i < int(n); i++ {
		out = append(out, uint32(i)) // int loop var to uint32: the vertex-id idiom
	}
	const k = 7
	out = append(out, uint32(k)) // constants are compiler-checked
	return out
}
`})
	if got := runRule(t, p, &TruncateRule{}); len(got) != 0 {
		t.Fatalf("loop-var and constant conversions are allowed, got %v", got)
	}
}

func TestTruncateRuleSkipsUntargetedPackages(t *testing.T) {
	p := loadFixture(t, "internal/metrics", map[string]string{"a.go": `package metrics

func Narrow(x int64) uint32 { return uint32(x) }
`})
	if got := runRule(t, p, &TruncateRule{}); len(got) != 0 {
		t.Fatalf("rule only applies to graph/gen/engine packages, got %v", got)
	}
}

func TestDocRuleFlagsUndocumentedAPI(t *testing.T) {
	p := loadFixture(t, "internal/galois", map[string]string{"a.go": `// Package galois is documented.
package galois

func Exported() {}
`})
	wantFinding(t, runRule(t, p, &DocRule{}), "internal/galois/a.go", 4, "doc")
}

func TestDocRuleAcceptsDocumentedAPI(t *testing.T) {
	p := loadFixture(t, "internal/galois", map[string]string{"a.go": `// Package galois is documented.
package galois

// Exported does a thing.
func Exported() {}

// Thing is a documented type.
type Thing struct{}

// Mine is a documented method.
func (t *Thing) Mine() {}

func unexported() {}
`})
	if got := runRule(t, p, &DocRule{}); len(got) != 0 {
		t.Fatalf("documented API should be clean, got %v", got)
	}
}

func TestDocRuleRequiresPackageDoc(t *testing.T) {
	p := loadFixture(t, "internal/par", map[string]string{"a.go": `package par
`})
	wantFinding(t, runRule(t, p, &DocRule{}), "internal/par/a.go", 1, "doc")
}

func TestIgnoreDirectiveSuppressesFinding(t *testing.T) {
	p := loadFixture(t, "internal/fix", map[string]string{"a.go": `package fix

import "sync/atomic"

var counter int64

func Bump() { atomic.AddInt64(&counter, 1) }

func Read() int64 {
	//lint:ignore atomic read happens after the join in every caller
	return counter
}
`})
	if got := runRule(t, p, &AtomicRule{}); len(got) != 0 {
		t.Fatalf("directive should suppress the finding, got %v", got)
	}
}

func TestFileIgnoreSuppressesWholeFile(t *testing.T) {
	p := loadFixture(t, "internal/fix", map[string]string{"a.go": `package fix

//lint:file-ignore atomic this file exposes a dual plain/atomic API by design

import "sync/atomic"

var counter int64

func Bump() { atomic.AddInt64(&counter, 1) }

func Read() int64 { return counter }

func Write() { counter = 0 }
`})
	if got := runRule(t, p, &AtomicRule{}); len(got) != 0 {
		t.Fatalf("file-ignore should suppress every finding, got %v", got)
	}
}

func TestDirectiveWithoutReasonIsAFinding(t *testing.T) {
	p := loadFixture(t, "internal/fix", map[string]string{"a.go": `package fix

//lint:ignore atomic
func f() {}
`})
	findings := runRule(t, p, &AtomicRule{})
	if len(findings) != 1 || findings[0].Rule != "directive" {
		t.Fatalf("reason-less directive must be reported, got %v", findings)
	}
}

func TestDirectiveUnknownRuleIsAFinding(t *testing.T) {
	p := loadFixture(t, "internal/fix", map[string]string{"a.go": `package fix

//lint:ignore nosuchrule because reasons
func f() {}
`})
	findings := runRule(t, p, &AtomicRule{})
	if len(findings) != 1 || findings[0].Rule != "directive" || !strings.Contains(findings[0].Msg, "nosuchrule") {
		t.Fatalf("unknown-rule directive must be reported, got %v", findings)
	}
}

// TestModuleIsClean runs the full analyzer over the real module: the tree
// must stay graphlint-clean, which is the same gate CI enforces.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("module-wide analysis is slow; covered by the non-short run and CI")
	}
	modDir, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(modDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("expected to load the whole module, got %d packages", len(pkgs))
	}
	findings := Run(pkgs, DefaultRules())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
