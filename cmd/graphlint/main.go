// Command graphlint runs the project-specific static analyzer over the
// module and reports invariant violations the generic Go toolchain cannot
// catch: mixed atomic/plain access, unjoined engine goroutines, panics in
// library code, unchecked 32-bit index truncation, and undocumented engine
// API. It exits non-zero when any finding survives the //lint:ignore
// directives, which makes it usable as a CI gate:
//
//	go run ./cmd/graphlint ./...
//
// Flags:
//
//	-json            emit findings as a JSON array instead of text
//	-list            print the available rules and exit
//	-rules           comma-separated subset of rules to run (default: all)
//	-baseline        suppression file: only findings not in it fail the run
//	-write-baseline  regenerate the baseline from the current findings
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"graphmaze/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	list := flag.Bool("list", false, "list available rules and exit")
	ruleFilter := flag.String("rules", "", "comma-separated subset of rules to run")
	baselinePath := flag.String("baseline", "", "baseline file: findings recorded in it are suppressed")
	writeBaseline := flag.Bool("write-baseline", false, "regenerate the baseline file from the current findings and exit")
	flag.Parse()

	if *list {
		for _, r := range lint.DefaultRules() {
			fmt.Printf("%-10s %s\n", r.Name(), r.Doc())
		}
		return
	}

	rules := lint.DefaultRules()
	if *ruleFilter != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*ruleFilter, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var kept []lint.Rule
		for _, r := range rules {
			if want[r.Name()] {
				kept = append(kept, r)
				delete(want, r.Name())
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "graphlint: unknown rule %q (use -list)\n", name)
			os.Exit(2)
		}
		rules = kept
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	modDir, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := lint.Load(modDir)
	if err != nil {
		fatal(err)
	}
	pkgs = filterPackages(pkgs, flag.Args())

	findings := lint.Run(pkgs, rules)

	if *writeBaseline {
		path := *baselinePath
		if path == "" {
			path = "lint.baseline.json"
		}
		if err := lint.WriteBaseline(path, findings); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "graphlint: wrote %d finding(s) to %s\n", len(findings), path)
		return
	}
	var suppressed []lint.Finding
	if *baselinePath != "" {
		base, err := lint.ReadBaseline(*baselinePath)
		if err != nil {
			fatal(err)
		}
		findings, suppressed = base.Apply(findings)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(suppressed) > 0 && !*jsonOut {
		fmt.Fprintf(os.Stderr, "graphlint: %d baselined finding(s) suppressed\n", len(suppressed))
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "graphlint: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

// filterPackages narrows pkgs to the requested patterns: "./..." (or no
// arguments) keeps everything, "./dir/..." keeps the subtree, and "./dir"
// keeps the single package.
func filterPackages(pkgs []*lint.Package, patterns []string) []*lint.Package {
	if len(patterns) == 0 {
		return pkgs
	}
	var out []*lint.Package
	for _, p := range pkgs {
		for _, pat := range patterns {
			if matches(p.Rel, pat) {
				out = append(out, p)
				break
			}
		}
	}
	return out
}

func matches(rel, pattern string) bool {
	pattern = strings.TrimPrefix(pattern, "./")
	if pattern == "..." || pattern == "" {
		return true
	}
	if prefix, ok := strings.CutSuffix(pattern, "/..."); ok {
		return rel == prefix || strings.HasPrefix(rel, prefix+"/")
	}
	return rel == strings.TrimSuffix(pattern, "/")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphlint:", err)
	os.Exit(2)
}
