package combblas

import (
	"fmt"
	"sort"

	"graphmaze/internal/cluster"
	"graphmaze/internal/graph"
)

// Grid is the 2-D process decomposition: nodes form a √P×√P grid and node
// (i,j) owns the matrix block at block-row i, block-column j (paper §3:
// CombBLAS is "the only framework that supports an edge-based partitioning
// of the graph").
type Grid struct {
	C    *cluster.Cluster
	P2D  *graph.Partition2D
	Dim  int
	rows uint32
}

// NewGrid builds a grid over the cluster for an n-vertex square matrix.
// The node count must be a perfect square (paper §4.3).
func NewGrid(c *cluster.Cluster, n uint32) (*Grid, error) {
	p2d, err := graph.NewPartition2D(n, c.Nodes())
	if err != nil {
		return nil, err
	}
	return &Grid{C: c, P2D: p2d, Dim: p2d.GridDim, rows: n}, nil
}

// blockBounds returns node's block-row and block-column vertex ranges.
func (g *Grid) blockBounds(node int) (rlo, rhi, clo, chi uint32) {
	ri, ci := g.P2D.Block(node)
	return g.P2D.RowStarts[ri], g.P2D.RowStarts[ri+1], g.P2D.ColStarts[ci], g.P2D.ColStarts[ci+1]
}

// accountSpMVTraffic charges one SpMV's exchange: the column-allgather of
// the input segments and the row-wise reduce-scatter of the partial
// outputs. activeFrac scales the volume for sparse (frontier) vectors.
func (g *Grid) accountSpMVTraffic(node int, vecLen int, bytesPerVal int, activeFrac float64) {
	if g.Dim <= 1 {
		return
	}
	segment := float64(vecLen) / float64(g.Dim*g.Dim)
	vol := int64(2 * segment * float64(bytesPerVal) * float64(g.Dim-1) * activeFrac)
	g.C.Account(node, vol, int64(2*(g.Dim-1)))
}

// DistSpMV computes y[r] = ⊕ A[r,c]⊗x[c] with each node folding its own
// block's contribution — the 2-D SpMV of CombBLAS. Matrix rows must have
// sorted column indices. bytesPerVal models the wire size of Y values;
// activeFrac scales traffic for sparse input vectors.
func DistSpMV[A, X, Y any](g *Grid, m *SpMat[A], x []X, sr Semiring[A, X, Y], bytesPerVal int, activeFrac float64) ([]Y, error) {
	if len(x) != int(m.NumCols) {
		return nil, fmt.Errorf("combblas: DistSpMV vector length %d, matrix has %d columns", len(x), m.NumCols)
	}
	y := make([]Y, m.NumRows)
	for i := range y {
		y[i] = sr.Zero()
	}
	err := g.C.RunPhase(func(node int) error {
		rlo, rhi, clo, chi := g.blockBounds(node)
		for r := rlo; r < rhi; r++ {
			cols, vals := m.Row(r)
			// Sorted columns: binary search the block-column window.
			lo := sort.Search(len(cols), func(i int) bool { return cols[i] >= clo })
			hi := sort.Search(len(cols), func(i int) bool { return cols[i] >= chi })
			acc := y[r]
			for i := lo; i < hi; i++ {
				acc = sr.Add(acc, sr.Mul(vals[i], x[cols[i]]))
			}
			y[r] = acc
		}
		g.accountSpMVTraffic(node, len(x), bytesPerVal, activeFrac)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return y, nil
}

// DistSpMSpV is the 2-D distributed frontier expansion: node (i,j)
// expands the frontier entries in its block-row through its block-column
// window. Traffic models the frontier-segment allgather and the output
// merge (sizes proportional to the actual frontier, the sparse-vector
// advantage of SpMSpV).
func DistSpMSpV(g *Grid, a *SpMat[struct{}], frontier []uint32, marks []bool) ([]uint32, error) {
	var out []uint32
	err := g.C.RunPhase(func(node int) error {
		rlo, rhi, clo, chi := g.blockBounds(node)
		var produced int64
		for _, v := range frontier {
			if v < rlo || v >= rhi {
				continue
			}
			cols, _ := a.Row(v)
			lo := sort.Search(len(cols), func(i int) bool { return cols[i] >= clo })
			for i := lo; i < len(cols) && cols[i] < chi; i++ {
				c := cols[i]
				if !marks[c] {
					marks[c] = true
					out = append(out, c)
					produced++
				}
			}
		}
		if g.Dim > 1 {
			seg := int64(len(frontier))/int64(g.C.Nodes()) + 1
			g.C.Account(node, 4*(seg+produced)*int64(g.Dim-1), int64(2*(g.Dim-1)))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, c := range out {
		marks[c] = false
	}
	return out, nil
}

// DistTriangleCount computes nnz-weighted |A ∩ A²| distributed
// SUMMA-style: node (i,j) computes its C=A² block with Gustavson's
// algorithm restricted to its block-row and block-column, intersects it
// with its A block, and the partial sums reduce to the global triangle
// count. Each node's A² block is materialized — the memory-hungry
// intermediate the paper calls out. When guardMemory is true and the
// modeled footprint exceeds node capacity the run fails with
// ErrOutOfMemory, reproducing the paper's CombBLAS TC failures on
// real-world inputs (§5.2–5.3).
func DistTriangleCount(g *Grid, a *SpMat[struct{}], guardMemory bool) (int64, error) {
	var total int64
	var peakBlockBytes int64
	cfg := g.C.Config()
	err := g.C.RunPhase(func(node int) error {
		rlo, rhi, clo, chi := g.blockBounds(node)
		acc := make(map[uint32]int64)
		var blockNNZ int64
		var partial int64
		for r := rlo; r < rhi; r++ {
			clear(acc)
			aCols, _ := a.Row(r)
			for _, j := range aCols {
				bCols, _ := a.Row(j)
				lo := sort.Search(len(bCols), func(i int) bool { return bCols[i] >= clo })
				for i := lo; i < len(bCols) && bCols[i] < chi; i++ {
					acc[bCols[i]]++
				}
			}
			// The real system materializes the A² block (sorted CSR rows)
			// before the EWiseMult — the expressibility overhead the paper
			// blames for CombBLAS TC: an extra sort + pass + resident
			// intermediate per row (§6.2: "inter-operation optimization ...
			// can make it more efficient").
			rowCols := make([]uint32, 0, len(acc))
			rowVals := make([]int64, 0, len(acc))
			for k := range acc {
				rowCols = append(rowCols, k)
			}
			sortU32(rowCols)
			for _, k := range rowCols {
				rowVals = append(rowVals, acc[k])
			}
			blockNNZ += int64(len(rowCols))
			// EWiseMult: merge-intersect A's row window with the block row.
			lo := sort.Search(len(aCols), func(i int) bool { return aCols[i] >= clo })
			i, j := lo, 0
			for i < len(aCols) && aCols[i] < chi && j < len(rowCols) {
				switch {
				case aCols[i] < rowCols[j]:
					i++
				case aCols[i] > rowCols[j]:
					j++
				default:
					partial += rowVals[j]
					i++
					j++
				}
			}
		}
		total += partial
		// SUMMA traffic: in each of Dim stages the node ships its A block
		// twice (row broadcast + column broadcast of the B replica).
		aBlockNNZ := a.NNZ() / int64(g.Dim*g.Dim)
		if g.Dim > 1 {
			g.C.Account(node, 2*aBlockNNZ*8*int64(g.Dim-1), int64(2*(g.Dim-1)*g.Dim))
		}
		// This node's A² block lives until the reduction.
		blockBytes := blockNNZ*12 + a.MemoryBytes(0)/int64(g.C.Nodes())
		g.C.RecordMemory(node, blockBytes)
		if blockBytes > peakBlockBytes {
			peakBlockBytes = blockBytes
		}
		// Count allreduce.
		g.C.Account(node, 8, 1)
		return nil
	})
	if err != nil {
		return 0, err
	}
	if guardMemory && cfg.MemoryPerNode > 0 && peakBlockBytes > cfg.MemoryPerNode {
		return 0, fmt.Errorf("combblas: out of memory computing A² (%d bytes/node exceeds %d): %w",
			peakBlockBytes, cfg.MemoryPerNode, ErrOutOfMemory)
	}
	return total, nil
}

// ErrOutOfMemory marks a modeled memory exhaustion, the failure mode the
// paper reports for CombBLAS triangle counting on real-world inputs.
var ErrOutOfMemory = fmt.Errorf("modeled memory exhausted")
