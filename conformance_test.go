package graphmaze

import (
	"errors"
	"testing"

	"graphmaze/internal/core"
)

// The conformance suite: every engine must enforce the shared input
// contract identically, so a user can swap engines without changing
// validation behaviour.

func conformanceInputs(t *testing.T) (*Graph, *Graph, *Graph, *Ratings) {
	t.Helper()
	pr, err := Generate(Graph500{Scale: 7, EdgeFactor: 6, Seed: 31}, ForPageRank)
	if err != nil {
		t.Fatal(err)
	}
	bfs, err := Generate(Graph500{Scale: 7, EdgeFactor: 6, Seed: 31}, ForBFS)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := Generate(Graph500{Scale: 7, EdgeFactor: 6, Seed: 31}, ForTriangles)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := GenerateRatings(9, 16, 31)
	if err != nil {
		t.Fatal(err)
	}
	return pr, bfs, tc, cf
}

func TestConformanceRejectsBadOptions(t *testing.T) {
	pr, bfs, _, cf := conformanceInputs(t)
	for _, eng := range Engines() {
		t.Run(eng.Name(), func(t *testing.T) {
			if _, err := eng.PageRank(pr, PageRankOptions{RandomJump: 2}); err == nil {
				t.Error("accepted random jump > 1")
			}
			if _, err := eng.PageRank(pr, PageRankOptions{Iterations: -1}); err == nil {
				t.Error("accepted negative iterations")
			}
			if _, err := eng.BFS(bfs, BFSOptions{Source: bfs.NumVertices + 1}); err == nil {
				t.Error("accepted out-of-range BFS source")
			}
			if _, err := eng.CollabFilter(cf, CFOptions{K: -1}); err == nil {
				t.Error("accepted negative latent dimension")
			}
			if _, err := eng.CollabFilter(cf, CFOptions{StepDecay: 5}); err == nil {
				t.Error("accepted step decay > 1")
			}
		})
	}
}

func TestConformanceRejectsUnsortedTriangleInput(t *testing.T) {
	// Triangle counting requires the sorted acyclic preparation; a graph
	// built raw (NewGraph never sorts) must be rejected by every engine.
	g, err := Generate(Graph500{Scale: 6, EdgeFactor: 4, Seed: 33}, ForTriangles)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := NewGraph(g.NumVertices, g.Edges())
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range Engines() {
		if _, err := eng.TriangleCount(raw, TriangleOptions{}); err == nil {
			t.Errorf("%s accepted unsorted adjacency", eng.Name())
		}
	}
}

func TestConformanceSingleNodeOnlyEngines(t *testing.T) {
	pr, bfs, tc, cf := conformanceInputs(t)
	exec := Exec{Cluster: &ClusterConfig{Nodes: 2}}
	for _, eng := range Engines() {
		caps := eng.Capabilities()
		_, prErr := eng.PageRank(pr, PageRankOptions{Iterations: 2, Exec: exec})
		_, bfsErr := eng.BFS(bfs, BFSOptions{Source: 0, Exec: exec})
		_, tcErr := eng.TriangleCount(tc, TriangleOptions{Exec: exec})
		_, cfErr := eng.CollabFilter(cf, CFOptions{K: 4, Iterations: 1, Exec: exec})
		if caps.MultiNode {
			for algo, err := range map[string]error{"pagerank": prErr, "bfs": bfsErr, "triangles": tcErr, "cf": cfErr} {
				// CombBLAS legitimately rejects non-square node counts.
				if err != nil && eng.Name() != "CombBLAS" {
					t.Errorf("%s %s: multi-node engine errored: %v", eng.Name(), algo, err)
				}
			}
		} else {
			for algo, err := range map[string]error{"pagerank": prErr, "bfs": bfsErr, "triangles": tcErr, "cf": cfErr} {
				if !errors.Is(err, core.ErrSingleNodeOnly) {
					t.Errorf("%s %s: expected ErrSingleNodeOnly, got %v", eng.Name(), algo, err)
				}
			}
		}
	}
}

func TestConformanceStatsPopulated(t *testing.T) {
	pr, _, _, _ := conformanceInputs(t)
	for _, eng := range Engines() {
		res, err := eng.PageRank(pr, PageRankOptions{Iterations: 3})
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		if res.Stats.WallSeconds <= 0 {
			t.Errorf("%s: WallSeconds = %v", eng.Name(), res.Stats.WallSeconds)
		}
		if res.Stats.Iterations <= 0 {
			t.Errorf("%s: Iterations = %d", eng.Name(), res.Stats.Iterations)
		}
		if res.Stats.Simulated {
			t.Errorf("%s: single-node run marked simulated", eng.Name())
		}
	}
}

// TestRandomizedEngineAgreement: a randomized property over seeds — every
// engine must agree with the reference on arbitrary RMAT inputs, not just
// the fixed fixtures.
func TestRandomizedEngineAgreement(t *testing.T) {
	for seed := int64(100); seed < 106; seed++ {
		tcG, err := Generate(Graph500{Scale: 7, EdgeFactor: 6, Seed: seed}, ForTriangles)
		if err != nil {
			t.Fatal(err)
		}
		bfsG, err := Generate(Graph500{Scale: 7, EdgeFactor: 6, Seed: seed}, ForBFS)
		if err != nil {
			t.Fatal(err)
		}
		wantTC := core.RefTriangleCount(tcG)
		source := uint32(seed) % bfsG.NumVertices
		wantBFS := core.RefBFS(bfsG, source)
		for _, eng := range Engines() {
			tc, err := eng.TriangleCount(tcG, TriangleOptions{})
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, eng.Name(), err)
			}
			if tc.Count != wantTC {
				t.Errorf("seed %d: %s counts %d, want %d", seed, eng.Name(), tc.Count, wantTC)
			}
			bfs, err := eng.BFS(bfsG, BFSOptions{Source: source})
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, eng.Name(), err)
			}
			if !core.EqualDistances(wantBFS, bfs.Distances) {
				t.Errorf("seed %d: %s BFS differs", seed, eng.Name())
			}
			if err := core.ValidateBFS(bfsG, source, bfs.Distances); err != nil {
				t.Errorf("seed %d: %s BFS fails Graph500 validation: %v", seed, eng.Name(), err)
			}
		}
	}
}
