package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// MuxOn registers the observability endpoints on an existing mux:
// Prometheus text at /metrics, expvar-style JSON at /metrics.json, and
// the full net/http/pprof suite under /debug/pprof/. The registry is
// sampled per request, so the endpoints always reflect live values.
// Servers with their own routes (graphserve) call this to mount the
// diagnostics on their mux and port instead of spawning a second
// listener; MuxOn deliberately leaves "/" alone so the host mux keeps
// its own index.
func MuxOn(mux *http.ServeMux, reg *Registry) {
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, reg.Snapshot(), "graphmaze")
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = WriteJSON(w, reg.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Mux builds the standalone observability HTTP handler: MuxOn's
// endpoints plus a plain-text index at "/".
func Mux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	MuxOn(mux, reg)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "graphmaze obs\n/metrics\n/metrics.json\n/debug/pprof/\n")
	})
	return mux
}

// Server is a live obs listener started by Serve.
type Server struct {
	ln   net.Listener
	done chan struct{}
}

// Serve starts the obs endpoint on addr (host:port; port 0 picks a free
// one) and returns once the listener is bound, serving in the background.
func Serve(addr string, reg *Registry) (*Server, error) {
	return ServeHandler(addr, Mux(reg))
}

// ServeHandler is Serve with a caller-supplied handler: it binds addr and
// serves h in the background. Servers that mount the obs endpoints on
// their own mux (via MuxOn) use this to keep everything on one port.
func ServeHandler(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, done: make(chan struct{})}
	srv := &http.Server{Handler: h}
	go func() {
		defer close(s.done)
		// Serve returns ErrServerClosed-style errors once the listener is
		// closed by Close; there is nothing useful to do with them here.
		_ = srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address ("" on a nil server).
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and waits for the serve loop to exit. In-flight
// requests are abandoned; the obs endpoint is diagnostics, not data-plane.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	err := s.ln.Close()
	<-s.done
	return err
}
