package combblas

import (
	"errors"
	"testing"

	"graphmaze/internal/cluster"
	"graphmaze/internal/core"
	"graphmaze/internal/gen"
	"graphmaze/internal/graph"
)

func fixtureDirected(t testing.TB) *graph.CSR {
	t.Helper()
	edges, err := gen.RMAT(gen.Graph500Config(8, 8, 41))
	if err != nil {
		t.Fatal(err)
	}
	b := graph.NewBuilder(1 << 8)
	b.AddEdges(edges)
	g, err := b.Build(graph.BuildOptions{Dedup: true, DropSelfLoops: true, SortAdjacency: true})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func fixtureUndirected(t testing.TB) *graph.CSR {
	t.Helper()
	edges, err := gen.RMAT(gen.Graph500Config(8, 8, 42))
	if err != nil {
		t.Fatal(err)
	}
	b := graph.NewBuilder(1 << 8)
	b.AddEdges(edges)
	g, err := b.Build(graph.BuildOptions{Orientation: graph.Symmetrize, Dedup: true, DropSelfLoops: true, SortAdjacency: true})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func fixtureAcyclic(t testing.TB) *graph.CSR {
	t.Helper()
	edges, err := gen.RMAT(gen.TriangleConfig(8, 8, 43))
	if err != nil {
		t.Fatal(err)
	}
	b := graph.NewBuilder(1 << 8)
	b.AddEdges(edges)
	g, err := b.Build(graph.BuildOptions{Orientation: graph.OrientAcyclic, Dedup: true, SortAdjacency: true})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func fixtureRatings(t testing.TB) *graph.Bipartite {
	t.Helper()
	bp, err := gen.Ratings(gen.DefaultRatingsConfig(8, 16, 44))
	if err != nil {
		t.Fatal(err)
	}
	return bp
}

func TestSpMVMatchesDense(t *testing.T) {
	// 3×3 pattern matrix: rows {0:[1,2], 1:[2], 2:[]}.
	m := &SpMat[struct{}]{
		NumRows: 3, NumCols: 3,
		Offsets: []int64{0, 2, 3, 3},
		Cols:    []uint32{1, 2, 2},
		Vals:    make([]struct{}, 3),
	}
	x := []float64{10, 20, 30}
	y, err := SpMV(m, x, PlusTimesF64())
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{50, 30, 0}
	for i := range want {
		if y[i] != want[i] {
			t.Errorf("y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestSpMVShapeError(t *testing.T) {
	m := &SpMat[struct{}]{NumRows: 2, NumCols: 3, Offsets: []int64{0, 0, 0}}
	if _, err := SpMV(m, []float64{1}, PlusTimesF64()); err == nil {
		t.Error("accepted mis-sized vector")
	}
}

func TestTranspose(t *testing.T) {
	g := fixtureDirected(t)
	m := FromGraph(g)
	mt := m.Transpose()
	if mt.NNZ() != m.NNZ() {
		t.Fatalf("transpose nnz %d != %d", mt.NNZ(), m.NNZ())
	}
	// Spot-check: every edge (r,c) appears as (c,r).
	cols, _ := m.Row(0)
	for _, c := range cols {
		tCols, _ := mt.Row(c)
		found := false
		for _, tc := range tCols {
			if tc == 0 {
				found = true
			}
		}
		if !found {
			t.Fatalf("edge (0,%d) missing from transpose", c)
		}
	}
}

func TestSpGEMMCountsPaths(t *testing.T) {
	// Path 0→1→2: A² must have exactly A²[0,2] = 1.
	g, _ := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	a := FromGraph(g)
	a2, err := SpGEMM(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if a2.NNZ() != 1 {
		t.Fatalf("A² nnz = %d, want 1", a2.NNZ())
	}
	cols, vals := a2.Row(0)
	if len(cols) != 1 || cols[0] != 2 || vals[0] != 1 {
		t.Errorf("A²[0] = %v/%v", cols, vals)
	}
}

func TestSpGEMMShapeError(t *testing.T) {
	a := &SpMat[struct{}]{NumRows: 2, NumCols: 3, Offsets: []int64{0, 0, 0}}
	b := &SpMat[struct{}]{NumRows: 2, NumCols: 2, Offsets: []int64{0, 0, 0}}
	if _, err := SpGEMM(a, b); err == nil {
		t.Error("accepted shape mismatch")
	}
}

func TestEWiseMultSumTriangles(t *testing.T) {
	// The paper's Figure 2 example: nnz(A ∩ A²) = 2.
	g, _ := graph.FromEdges(4, []graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 2}, {Src: 1, Dst: 3}, {Src: 2, Dst: 3}})
	g.SortAdjacency()
	a := FromGraph(g)
	a2, err := SpGEMM(a, a)
	if err != nil {
		t.Fatal(err)
	}
	count, err := EWiseMultSum(a, a2)
	if err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Errorf("triangles = %d, want 2", count)
	}
}

func TestPageRankMatchesReference(t *testing.T) {
	g := fixtureDirected(t)
	opt := core.PageRankOptions{Iterations: 6}
	want := core.RefPageRank(g, opt)
	res, err := New().PageRank(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if d := core.ComparePageRank(want, res.Ranks); d > 1e-9 {
		t.Errorf("max relative diff %v", d)
	}
}

func TestPageRankCluster(t *testing.T) {
	g := fixtureDirected(t)
	want := core.RefPageRank(g, core.PageRankOptions{Iterations: 5})
	res, err := New().PageRank(g, core.PageRankOptions{Iterations: 5,
		Exec: core.Exec{Cluster: &cluster.Config{Nodes: 4}}})
	if err != nil {
		t.Fatal(err)
	}
	if d := core.ComparePageRank(want, res.Ranks); d > 1e-9 {
		t.Errorf("max relative diff %v", d)
	}
	if res.Stats.Report.BytesSent == 0 {
		t.Error("no SpMV traffic recorded")
	}
}

func TestClusterRequiresSquareNodeCount(t *testing.T) {
	g := fixtureDirected(t)
	_, err := New().PageRank(g, core.PageRankOptions{Iterations: 2,
		Exec: core.Exec{Cluster: &cluster.Config{Nodes: 3}}})
	if err == nil {
		t.Error("accepted non-square node count")
	}
}

func TestBFSMatchesReference(t *testing.T) {
	g := fixtureUndirected(t)
	want := core.RefBFS(g, 9)
	res, err := New().BFS(g, core.BFSOptions{Source: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !core.EqualDistances(want, res.Distances) {
		t.Error("distances differ from reference")
	}
}

func TestBFSCluster(t *testing.T) {
	g := fixtureUndirected(t)
	want := core.RefBFS(g, 9)
	res, err := New().BFS(g, core.BFSOptions{Source: 9,
		Exec: core.Exec{Cluster: &cluster.Config{Nodes: 9}}})
	if err != nil {
		t.Fatal(err)
	}
	if !core.EqualDistances(want, res.Distances) {
		t.Error("cluster distances differ from reference")
	}
}

func TestTriangleCountMatchesReference(t *testing.T) {
	g := fixtureAcyclic(t)
	want := core.RefTriangleCount(g)
	res, err := New().TriangleCount(g, core.TriangleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want {
		t.Errorf("count = %d, want %d", res.Count, want)
	}
}

func TestTriangleCluster(t *testing.T) {
	g := fixtureAcyclic(t)
	want := core.RefTriangleCount(g)
	res, err := New().TriangleCount(g, core.TriangleOptions{
		Exec: core.Exec{Cluster: &cluster.Config{Nodes: 4}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want {
		t.Errorf("cluster count = %d, want %d", res.Count, want)
	}
}

func TestTriangleOutOfMemoryGuard(t *testing.T) {
	g := fixtureAcyclic(t)
	// A tiny modeled node memory forces the A² blowup to trip the guard.
	_, err := New().TriangleCount(g, core.TriangleOptions{
		Exec: core.Exec{Cluster: &cluster.Config{Nodes: 4, MemoryPerNode: 1024}}})
	if !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("err = %v, want ErrOutOfMemory", err)
	}
	// The unguarded engine powers through.
	res, err := NewUnguarded().TriangleCount(g, core.TriangleOptions{
		Exec: core.Exec{Cluster: &cluster.Config{Nodes: 4, MemoryPerNode: 1024}}})
	if err != nil {
		t.Fatalf("unguarded: %v", err)
	}
	if res.Count != core.RefTriangleCount(g) {
		t.Error("unguarded count wrong")
	}
}

func TestCollabFilterGD(t *testing.T) {
	bp := fixtureRatings(t)
	opt := core.CFOptions{K: 4, Iterations: 4, Seed: 6}
	res, err := New().CollabFilter(bp, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !core.MonotonicallyNonIncreasing(res.RMSE, 1e-3) {
		t.Errorf("RMSE not decreasing: %v", res.RMSE)
	}
	// Identical update rule to the reference.
	ref := core.RefCollabFilterGD(bp, opt)
	for i := range ref.RMSE {
		d := ref.RMSE[i] - res.RMSE[i]
		if d < 0 {
			d = -d
		}
		if d > 1e-3 {
			t.Errorf("iteration %d: RMSE %v vs reference %v", i, res.RMSE[i], ref.RMSE[i])
		}
	}
}

func TestCollabFilterRejectsSGD(t *testing.T) {
	bp := fixtureRatings(t)
	if _, err := New().CollabFilter(bp, core.CFOptions{Method: core.SGD}); !errors.Is(err, core.ErrUnsupported) {
		t.Errorf("err = %v, want ErrUnsupported", err)
	}
}

func TestCollabFilterCluster(t *testing.T) {
	bp := fixtureRatings(t)
	res, err := New().CollabFilter(bp, core.CFOptions{K: 4, Iterations: 3, Seed: 6,
		Exec: core.Exec{Cluster: &cluster.Config{Nodes: 4}}})
	if err != nil {
		t.Fatal(err)
	}
	if !core.MonotonicallyNonIncreasing(res.RMSE, 1e-3) {
		t.Errorf("distributed RMSE not decreasing: %v", res.RMSE)
	}
	if res.Stats.Report.BytesSent == 0 {
		t.Error("no K-pass traffic recorded")
	}
}

func TestSemiringIdentities(t *testing.T) {
	pt := PlusTimesF64()
	if pt.Add(pt.Zero(), 5) != 5 {
		t.Error("PlusTimes zero not identity")
	}
	mp := MinPlusI32()
	if mp.Add(mp.Zero(), 7) != 7 {
		t.Error("MinPlus zero not identity")
	}
	ob := OrAndBool()
	if ob.Add(ob.Zero(), true) != true || ob.Add(ob.Zero(), false) != false {
		t.Error("OrAnd zero not identity")
	}
	pw := PlusTimesWeighted()
	if pw.Mul(2.0, 3.0) != 6.0 {
		t.Error("weighted Mul wrong")
	}
}

func TestFromWeightedGraphRequiresWeights(t *testing.T) {
	g, _ := graph.FromEdges(2, []graph.Edge{{Src: 0, Dst: 1}})
	if _, err := FromWeightedGraph(g); err == nil {
		t.Error("accepted unweighted graph")
	}
}

func TestReduceRowDegrees(t *testing.T) {
	g := fixtureDirected(t)
	m := FromGraph(g)
	deg := Reduce(m, 1.0, PlusTimesF64())
	for v := uint32(0); v < g.NumVertices; v++ {
		if int64(deg[v]) != g.Degree(v) {
			t.Fatalf("vertex %d: Reduce degree %v, want %d", v, deg[v], g.Degree(v))
		}
	}
}

func TestApplyInPlace(t *testing.T) {
	v := []float64{1, 2, 3, 4}
	Apply(v, func(i int, x float64) float64 { return x * float64(i) })
	want := []float64{0, 2, 6, 12}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("Apply result %v, want %v", v, want)
		}
	}
}
