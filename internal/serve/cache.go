package serve

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"graphmaze/internal/graph"
)

// cacheKey builds the result-cache key: the epoch is part of the key, so
// a delta invalidates every cached result of the graph simply by moving
// queries to a new key — stale entries age out of the LRU, they are never
// flushed. The fingerprint is the canonical (parsed, defaulted,
// re-serialized) query, so two spellings of the same query share an
// entry.
func cacheKey(graphName string, epoch graph.Epoch, fingerprint string) string {
	return fmt.Sprintf("%s@%d|%s", graphName, epoch, fingerprint)
}

// resultCache is a mutex-guarded LRU over fully serialized response
// bodies. Caching bytes (not results) is what makes the hit path
// byte-identical to recomputation by construction: the body was produced
// by exactly one marshal of a deterministic kernel's output.
type resultCache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recent
	entries map[string]*list.Element

	hits   atomic.Int64
	misses atomic.Int64
}

// cacheEntry is one cached response body.
type cacheEntry struct {
	key  string
	body []byte
}

func newResultCache(maxEntries int) *resultCache {
	return &resultCache{
		max:     maxEntries,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
	}
}

// get returns the cached body for key, counting a hit or miss.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheEntry).body, true
}

// put stores body under key, evicting the least recently used entry when
// full. Storing an existing key refreshes its body (the bytes are
// identical for a deterministic kernel, so this is a recency bump).
func (c *resultCache) put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).body = body
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// Len reports the current entry count.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
