package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// GraphTarget names one graph the load generator queries. Symmetric
// graphs additionally receive triangle-count queries.
type GraphTarget struct {
	Name      string
	Symmetric bool
}

// LoadConfig shapes a load-generation run against a live server.
type LoadConfig struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Graphs lists the query targets (required).
	Graphs []GraphTarget
	// Tenants is the simulated tenant population (default 8). Tenant
	// selection is Zipf-skewed, so tenant-0 dominates — the workload the
	// fair queue exists for.
	Tenants int
	// Concurrency is the number of client goroutines (default 8).
	Concurrency int
	// Duration bounds the run in wall-clock time (default 2s) unless
	// Requests is set.
	Duration time.Duration
	// Requests, when > 0, bounds the run by request count instead.
	Requests int64
	// Seed makes runs reproducible (default 1).
	Seed int64
	// DeltaInterval, when > 0, posts a small random delta to the first
	// graph at this cadence, so the run exercises epoch advance (cache
	// invalidation + re-warm) under live queries.
	DeltaInterval time.Duration
	// DeltaEdges sizes each mutation batch (default 64).
	DeltaEdges int
	// Client overrides the HTTP client (default http.DefaultClient).
	Client *http.Client
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Tenants <= 0 {
		c.Tenants = 8
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.DeltaEdges <= 0 {
		c.DeltaEdges = 64
	}
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	return c
}

// LoadReport is what a load-generation run measured.
type LoadReport struct {
	Duration time.Duration
	Requests int64
	Errors   int64
	Shed     int64
	Hits     int64
	Misses   int64
	Deltas   int64

	QPS float64
	P50 time.Duration
	P99 time.Duration

	// PerKind breaks latency down by query kind (completed 2xx only).
	PerKind map[string]KindReport
}

// KindReport is one query kind's latency summary.
type KindReport struct {
	Count int64
	P50   time.Duration
	P99   time.Duration
}

// HitRate is the cache hit fraction of completed queries.
func (r *LoadReport) HitRate() float64 {
	total := r.Hits + r.Misses
	if total == 0 {
		return 0
	}
	return float64(r.Hits) / float64(total)
}

// ShedRate is the load-shed fraction of all issued requests.
func (r *LoadReport) ShedRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Requests)
}

// Format renders the report as an aligned table.
func (r *LoadReport) Format(w io.Writer) {
	fmt.Fprintf(w, "loadgen: %d requests in %.2fs (%.0f qps)\n", r.Requests, r.Duration.Seconds(), r.QPS)
	fmt.Fprintf(w, "  latency    p50 %-12s p99 %s\n", r.P50, r.P99)
	fmt.Fprintf(w, "  cache      %d hits / %d misses (%.1f%% hit rate)\n", r.Hits, r.Misses, 100*r.HitRate())
	fmt.Fprintf(w, "  shed       %d (%.1f%% of requests)\n", r.Shed, 100*r.ShedRate())
	fmt.Fprintf(w, "  errors     %d\n", r.Errors)
	if r.Deltas > 0 {
		fmt.Fprintf(w, "  deltas     %d applied during run\n", r.Deltas)
	}
	kinds := make([]string, 0, len(r.PerKind))
	for k := range r.PerKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		kr := r.PerKind[k]
		fmt.Fprintf(w, "  %-10s %6d queries, p50 %-12s p99 %s\n", k, kr.Count, kr.P50, kr.P99)
	}
}

// loadTarget is one concrete pre-built query URL.
type loadTarget struct {
	kind string
	url  string
}

// buildTargets expands the graph list into the query catalog the
// generator samples from. The catalog is finite by design: repeated
// sampling is what produces cache hits.
func buildTargets(cfg LoadConfig) []loadTarget {
	var ts []loadTarget
	for _, g := range cfg.Graphs {
		for _, iters := range []int{5, 10, 20} {
			ts = append(ts, loadTarget{kindPageRank,
				fmt.Sprintf("%s/query/pagerank?graph=%s&iters=%d&k=5", cfg.BaseURL, g.Name, iters)})
		}
		for src := 0; src < 4; src++ {
			ts = append(ts, loadTarget{kindBFS,
				fmt.Sprintf("%s/query/bfs?graph=%s&source=%d", cfg.BaseURL, g.Name, src)})
		}
		ts = append(ts, loadTarget{kindCC, fmt.Sprintf("%s/query/cc?graph=%s", cfg.BaseURL, g.Name)})
		if g.Symmetric {
			ts = append(ts, loadTarget{kindTC, fmt.Sprintf("%s/query/tc?graph=%s", cfg.BaseURL, g.Name)})
		}
		ts = append(ts, loadTarget{kindDatalog,
			fmt.Sprintf("%s/query/datalog?graph=%s&source=0", cfg.BaseURL, g.Name)})
	}
	return ts
}

// clientStats is one generator goroutine's private tallies (merged after
// the run; no shared state on the hot path).
type clientStats struct {
	requests int64
	errors   int64
	shed     int64
	hits     int64
	misses   int64
	samples  map[string][]time.Duration
}

// RunLoad drives the server with a Zipf-skewed multi-tenant request mix
// until the duration elapses, the request cap is reached, or ctx is
// cancelled, and reports client-observed latency, throughput, cache hit
// rate, and shed rate.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	cfg = cfg.withDefaults()
	if cfg.BaseURL == "" || len(cfg.Graphs) == 0 {
		return nil, fmt.Errorf("serve: loadgen needs a base URL and at least one graph")
	}
	targets := buildTargets(cfg)

	runCtx := ctx
	var cancel context.CancelFunc
	if cfg.Requests <= 0 {
		runCtx, cancel = context.WithTimeout(ctx, cfg.Duration)
	} else {
		runCtx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	var issued atomic.Int64
	var deltas atomic.Int64

	// Optional mutator: keeps epochs advancing while queries run.
	var mutWG sync.WaitGroup
	if cfg.DeltaInterval > 0 {
		mutWG.Add(1)
		go func() {
			defer mutWG.Done()
			rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed))
			tick := time.NewTicker(cfg.DeltaInterval)
			defer tick.Stop()
			for {
				select {
				case <-runCtx.Done():
					return
				case <-tick.C:
					if postDelta(runCtx, cfg, rng) == nil {
						deltas.Add(1)
					}
				}
			}
		}()
	}

	stats := make([]*clientStats, cfg.Concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Concurrency; i++ {
		st := &clientStats{samples: make(map[string][]time.Duration)}
		stats[i] = st
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(worker)*7919))
			// Zipf skew over both axes: a heavy-hitter tenant and a
			// heavy-hitter query mix, per the multi-tenant serving story.
			tenantZipf := rand.NewZipf(rng, 1.3, 1, uint64(cfg.Tenants-1))
			targetZipf := rand.NewZipf(rng, 1.2, 1, uint64(len(targets)-1))
			for runCtx.Err() == nil {
				if cfg.Requests > 0 && issued.Add(1) > cfg.Requests {
					return
				}
				tgt := targets[targetZipf.Uint64()]
				tenant := fmt.Sprintf("tenant-%d", tenantZipf.Uint64())
				st.requests++
				t0 := time.Now()
				code, cacheState, err := doQuery(runCtx, cfg.Client, tgt.url, tenant)
				lat := time.Since(t0)
				switch {
				case err != nil:
					if runCtx.Err() != nil {
						return
					}
					st.errors++
				case code == http.StatusTooManyRequests:
					st.shed++
				case code != http.StatusOK:
					st.errors++
				default:
					st.samples[tgt.kind] = append(st.samples[tgt.kind], lat)
					switch cacheState {
					case "hit":
						st.hits++
					default:
						st.misses++
					}
				}
			}
		}(i)
	}
	wg.Wait()
	cancel()
	mutWG.Wait()
	elapsed := time.Since(start)

	rep := &LoadReport{Duration: elapsed, Deltas: deltas.Load(), PerKind: make(map[string]KindReport)}
	var all []time.Duration
	perKind := make(map[string][]time.Duration)
	for _, st := range stats {
		rep.Requests += st.requests
		rep.Errors += st.errors
		rep.Shed += st.shed
		rep.Hits += st.hits
		rep.Misses += st.misses
		for kind, xs := range st.samples {
			perKind[kind] = append(perKind[kind], xs...)
			all = append(all, xs...)
		}
	}
	rep.QPS = float64(rep.Requests) / elapsed.Seconds()
	rep.P50 = percentile(all, 0.50)
	rep.P99 = percentile(all, 0.99)
	for kind, xs := range perKind {
		rep.PerKind[kind] = KindReport{
			Count: int64(len(xs)),
			P50:   percentile(xs, 0.50),
			P99:   percentile(xs, 0.99),
		}
	}
	return rep, nil
}

// doQuery issues one GET and returns (status, X-Cache state, error).
func doQuery(ctx context.Context, client *http.Client, url, tenant string) (int, string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, "", err
	}
	req.Header.Set("X-Tenant", tenant)
	resp, err := client.Do(req)
	if err != nil {
		return 0, "", err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	return resp.StatusCode, resp.Header.Get("X-Cache"), nil
}

// postDelta sends one random mutation batch to the first configured graph.
func postDelta(ctx context.Context, cfg LoadConfig, rng *rand.Rand) error {
	edges := make([][2]uint32, cfg.DeltaEdges)
	for i := range edges {
		edges[i] = [2]uint32{uint32(rng.Intn(1 << 12)), uint32(rng.Intn(1 << 12))}
	}
	body, err := json.Marshal(deltaRequest{Graph: cfg.Graphs[0].Name, Edges: edges})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.BaseURL+"/delta", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("delta: status %d", resp.StatusCode)
	}
	return nil
}

// percentile returns the q-quantile of xs by nearest-rank on the sorted
// samples (zero when empty).
func percentile(xs []time.Duration, q float64) time.Duration {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(xs))
	copy(sorted, xs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}
