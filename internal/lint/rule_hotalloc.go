package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAllocRule is the hot-path allocation family. It scopes itself to
// the function-literal bodies handed to par.For*-family calls — the
// per-element and per-worker kernels that run millions of times — and
// flags the allocation patterns the GraphMat "ninja gap" work calls out:
//
//   - append into a destination never preallocated with capacity in the
//     enclosing function (amortized growth inside the kernel),
//   - defer inside the body (a heap-allocated defer record per call),
//   - fmt.* calls (every argument boxes into an interface),
//   - explicit conversions to interface types (boxing per element),
//   - closures created inside a loop inside the body (one allocation
//     per iteration).
type HotAllocRule struct{}

// Name implements Rule.
func (*HotAllocRule) Name() string { return "hotalloc" }

// Doc implements Rule.
func (*HotAllocRule) Doc() string {
	return "par.For* kernel bodies must not allocate per element: preallocate appends, no defer/boxing/per-iteration closures"
}

// Check implements Rule.
func (r *HotAllocRule) Check(p *Package, report func(pos token.Pos, format string, args ...any)) {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			forEachParBody(p, fn.Body, func(callName string, lit *ast.FuncLit) {
				r.checkBody(p, fn.Body, callName, lit, report)
			})
		}
	}
}

func (r *HotAllocRule) checkBody(p *Package, enclosing *ast.BlockStmt, callName string, lit *ast.FuncLit,
	report func(pos token.Pos, format string, args ...any)) {
	inLoop := 0
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.DeferStmt:
			report(s.Pos(), "defer inside a %s body allocates a defer record per call; hoist cleanup out of the kernel", callName)
		case *ast.ForStmt, *ast.RangeStmt:
			inLoop++
			defer func() { inLoop-- }()
			// Walk children with the loop depth raised, then stop this
			// branch of the outer walk.
			for _, child := range childNodes(n) {
				ast.Inspect(child, walk)
			}
			return false
		case *ast.FuncLit:
			if inLoop > 0 {
				report(s.Pos(), "closure created inside a loop inside a %s body allocates per iteration; hoist it out of the loop", callName)
			}
		case *ast.CallExpr:
			r.checkCall(p, enclosing, callName, lit, s, report)
		}
		return true
	}
	ast.Inspect(lit.Body, walk)
}

// childNodes returns the direct child nodes of a for/range statement in
// source order, so the walker can re-enter them at raised loop depth.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	switch s := n.(type) {
	case *ast.ForStmt:
		if s.Init != nil {
			out = append(out, s.Init)
		}
		if s.Cond != nil {
			out = append(out, s.Cond)
		}
		if s.Post != nil {
			out = append(out, s.Post)
		}
		out = append(out, s.Body)
	case *ast.RangeStmt:
		out = append(out, s.X, s.Body)
	}
	return out
}

func (r *HotAllocRule) checkCall(p *Package, enclosing *ast.BlockStmt, callName string, lit *ast.FuncLit,
	call *ast.CallExpr, report func(pos token.Pos, format string, args ...any)) {
	// fmt.* boxes every argument.
	if callee := calleeFunc(p, call); callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		report(call.Pos(), "fmt.%s inside a %s body boxes its arguments into interfaces per call; format outside the kernel", callee.Name(), callName)
		return
	}
	// Explicit conversion to an interface type.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if _, isIface := tv.Type.Underlying().(*types.Interface); isIface {
			if atv, ok := p.Info.Types[call.Args[0]]; ok && atv.Type != nil {
				if _, already := atv.Type.Underlying().(*types.Interface); !already {
					report(call.Pos(), "conversion to interface type inside a %s body boxes the value per element", callName)
				}
			}
		}
		return
	}
	// append into a destination with no capacity preallocation.
	if isBuiltinAppend(p, call) && len(call.Args) > 0 {
		root := exprRootOfChain(p, call.Args[0])
		if root == nil {
			return
		}
		if !preallocated(p, enclosing, call.Args[0], root) {
			report(call.Pos(), "append to %s inside a %s body without preallocation: size or reserve it with make(..., n) before the loop", root.Name(), callName)
		}
	}
}

// preallocated reports whether the function reserves capacity for the
// append destination: a make(...) with a nonzero length or an explicit
// capacity, assigned to the same root (for a plain identifier) or to an
// indexed element of the same root (for per-shard buffers like
// buf[s] = make(...)).
func preallocated(p *Package, enclosing *ast.BlockStmt, dest ast.Expr, root types.Object) bool {
	_, destIndexed := ast.Unparen(dest).(*ast.IndexExpr)
	found := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if found {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || i >= len(as.Lhs) {
				continue
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "make" {
				continue
			}
			if !makeReservesCapacity(call) {
				continue
			}
			lhs := ast.Unparen(as.Lhs[i])
			_, lhsIndexed := lhs.(*ast.IndexExpr)
			if lhsIndexed != destIndexed {
				continue
			}
			if exprRootOfChain(p, lhs) == root {
				found = true
			}
		}
		return true
	})
	return found
}

// makeReservesCapacity reports whether a make call reserves space: a
// capacity argument, or a length argument that is not the literal 0.
func makeReservesCapacity(call *ast.CallExpr) bool {
	switch len(call.Args) {
	case 3:
		return true
	case 2:
		lit, ok := ast.Unparen(call.Args[1]).(*ast.BasicLit)
		return !ok || lit.Value != "0"
	}
	return false
}
