package socialite

import (
	"math/rand"
	"testing"

	"graphmaze/internal/graph"
)

// randomRuleFixture builds a PageRank-shaped rule over a random graph so
// the three evaluation paths (generic serial, compiled, sharded parallel)
// can be compared.
func randomRuleFixture(t *testing.T, seed int64, n uint32, m int) (*Rule, *VecTable, func() *VecTable) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{Src: uint32(r.Intn(int(n))), Dst: uint32(r.Intn(int(n)))}
	}
	b := graph.NewBuilder(n)
	b.AddEdges(edges)
	g, err := b.Build(graph.BuildOptions{Dedup: true, DropSelfLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	edgeT := NewEdgeTable("E", g)
	src := NewVecTable("SRC", n)
	for v := uint32(0); v < n; v++ {
		src.Put(v, Scalar(float64(v%17)+1))
	}
	makeRule := func(head *VecTable) *Rule {
		return &Rule{
			Name: "sum", KeySlots: 2, ValSlots: 2,
			Driver: Driver{Vec: &VecAtom{Table: src, KeySlot: 0, ValSlot: 0}},
			Atoms: []Atom{
				{Let: &Let{OutSlot: 1, FScalar: func(env *Env) float64 { return env.Vals[0].S() * 2 }}},
				{Edge: &EdgeAtom{Table: edgeT, SrcSlot: 0, DstSlot: 1, WeightSlot: -1}},
			},
			Head: Head{Agg: AggSum, KeySlot: 1, ValSlot: 1},
		}
	}
	// Returns a fresh head table + rule each call.
	return nil, src, func() *VecTable {
		head := NewVecTable("H", n)
		rule := makeRule(head)
		rule.Head.Table = head
		if err := rule.Validate(); err != nil {
			t.Fatal(err)
		}
		if _, err := EvalParallel(rule, 0, n, nil, nil, 0, false); err != nil {
			t.Fatal(err)
		}
		return head
	}
}

func TestEvalParallelMatchesSerialFold(t *testing.T) {
	const n, m = 300, 2000
	r := rand.New(rand.NewSource(7))
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{Src: uint32(r.Intn(n)), Dst: uint32(r.Intn(n))}
	}
	b := graph.NewBuilder(n)
	b.AddEdges(edges)
	g, err := b.Build(graph.BuildOptions{Dedup: true, DropSelfLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	edgeT := NewEdgeTable("E", g)
	src := NewVecTable("SRC", n)
	for v := uint32(0); v < n; v++ {
		src.Put(v, Scalar(float64(v)+0.5))
	}
	build := func(head *VecTable) *Rule {
		return &Rule{
			Name: "sum", KeySlots: 2, ValSlots: 2,
			Driver: Driver{Vec: &VecAtom{Table: src, KeySlot: 0, ValSlot: 0}},
			Atoms: []Atom{
				{Let: &Let{OutSlot: 1, FScalar: func(env *Env) float64 { return env.Vals[0].S() * 3 }}},
				{Edge: &EdgeAtom{Table: edgeT, SrcSlot: 0, DstSlot: 1, WeightSlot: -1}},
			},
			Head: Head{Agg: AggSum, KeySlot: 1, ValSlot: 1},
		}
	}

	// Serial reference via the generic recursive evaluator.
	want := NewVecTable("W", n)
	ruleW := build(want)
	ruleW.Head.Table = want
	if err := ruleW.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := ruleW.EvalVecDriver(0, n, nil, func(key uint32, val Value) {
		want.foldScalar(AggSum, key, val[0])
	}); err != nil {
		t.Fatal(err)
	}

	// Parallel/compiled evaluation.
	got := NewVecTable("G", n)
	ruleG := build(got)
	ruleG.Head.Table = got
	if err := ruleG.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := EvalParallel(ruleG, 0, n, nil, nil, 0, false); err != nil {
		t.Fatal(err)
	}

	if want.Len() != got.Len() {
		t.Fatalf("len %d vs %d", got.Len(), want.Len())
	}
	want.ForEach(func(key uint32, val Value) {
		gv, ok := got.Get(key)
		if !ok {
			t.Fatalf("key %d missing from parallel result", key)
		}
		diff := gv.S() - val.S()
		if diff < 0 {
			diff = -diff
		}
		if diff > 1e-9 {
			t.Fatalf("key %d: %v vs %v", key, gv.S(), val.S())
		}
	})
}

func TestCompileScalarRuleRecognition(t *testing.T) {
	g, _ := graph.FromEdges(4, []graph.Edge{{Src: 0, Dst: 1}})
	edgeT := NewEdgeTable("E", g)
	vt := NewVecTable("V", 4)
	head := NewVecTable("H", 4)

	good := &Rule{
		Name: "ok", KeySlots: 2, ValSlots: 2,
		Driver: Driver{Vec: &VecAtom{Table: vt, KeySlot: 0, ValSlot: 0}},
		Atoms: []Atom{
			{Let: &Let{OutSlot: 1, FScalar: func(env *Env) float64 { return 1 }}},
			{Edge: &EdgeAtom{Table: edgeT, SrcSlot: 0, DstSlot: 1, WeightSlot: -1}},
		},
		Head: Head{Table: head, Agg: AggSum, KeySlot: 1, ValSlot: 1},
	}
	if _, ok := compileScalarRule(good); !ok {
		t.Error("hot-shape rule not recognized by the compiler")
	}

	// Edge driver → not the hot shape.
	edgeDriven := &Rule{
		Name: "edge", KeySlots: 2, ValSlots: 1,
		Driver: Driver{Edge: &EdgeAtom{Table: edgeT, SrcSlot: 0, DstSlot: 1, WeightSlot: -1}},
		Head:   Head{Table: head, Agg: AggCount, KeySlot: -1, ValSlot: -1},
	}
	if _, ok := compileScalarRule(edgeDriven); ok {
		t.Error("edge-driven rule wrongly compiled")
	}

	// Weighted edge atom → generic path.
	weighted := &Rule{
		Name: "w", KeySlots: 2, ValSlots: 2,
		Driver: Driver{Vec: &VecAtom{Table: vt, KeySlot: 0, ValSlot: 0}},
		Atoms: []Atom{
			{Edge: &EdgeAtom{Table: edgeT, SrcSlot: 0, DstSlot: 1, WeightSlot: 1}},
		},
		Head: Head{Table: head, Agg: AggSum, KeySlot: 1, ValSlot: 1},
	}
	if _, ok := compileScalarRule(weighted); ok {
		t.Error("weighted-edge rule wrongly compiled")
	}
}

func TestEvalParallelDeltaRestriction(t *testing.T) {
	g, _ := graph.FromEdges(4, []graph.Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 3}})
	edgeT := NewEdgeTable("E", g)
	dist := NewVecTable("D", 4)
	dist.Put(0, Scalar(0))
	dist.Put(2, Scalar(0))
	rule := &Rule{
		Name: "bfs", KeySlots: 2, ValSlots: 2,
		Driver: Driver{Vec: &VecAtom{Table: dist, KeySlot: 0, ValSlot: 0}},
		Atoms: []Atom{
			{Let: &Let{OutSlot: 1, FScalar: func(env *Env) float64 { return env.Vals[0].S() + 1 }}},
			{Edge: &EdgeAtom{Table: edgeT, SrcSlot: 0, DstSlot: 1, WeightSlot: -1}},
		},
		Head: Head{Table: dist, Agg: AggMin, KeySlot: 1, ValSlot: 1},
	}
	if err := rule.Validate(); err != nil {
		t.Fatal(err)
	}
	// Delta restricted to source 0: only vertex 1 should be discovered.
	stats, err := EvalParallel(rule, 0, 4, []uint32{0}, nil, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Changed) != 1 || stats.Changed[0] != 1 {
		t.Errorf("Changed = %v, want [1]", stats.Changed)
	}
	if _, ok := dist.Get(3); ok {
		t.Error("vertex 3 reached despite delta restriction")
	}
}

func TestEvalParallelRemoteAccounting(t *testing.T) {
	g, _ := graph.FromEdges(4, []graph.Edge{{Src: 0, Dst: 3}, {Src: 0, Dst: 1}})
	edgeT := NewEdgeTable("E", g)
	src := NewVecTable("S", 4)
	src.Put(0, Scalar(1))
	head := NewVecTable("H", 4)
	rule := &Rule{
		Name: "acc", KeySlots: 2, ValSlots: 2,
		Driver: Driver{Vec: &VecAtom{Table: src, KeySlot: 0, ValSlot: 0}},
		Atoms: []Atom{
			{Let: &Let{OutSlot: 1, FScalar: func(env *Env) float64 { return 1 }}},
			{Edge: &EdgeAtom{Table: edgeT, SrcSlot: 0, DstSlot: 1, WeightSlot: -1}},
		},
		Head: Head{Table: head, Agg: AggSum, KeySlot: 1, ValSlot: 1},
	}
	if err := rule.Validate(); err != nil {
		t.Fatal(err)
	}
	// Owner: keys < 2 → node 0, else node 1. Evaluating as node 0, the
	// emission to key 3 is remote, to key 1 local.
	owner := func(k uint32) int {
		if k < 2 {
			return 0
		}
		return 1
	}
	stats, err := EvalParallel(rule, 0, 4, nil, owner, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RemoteTuples != 1 || stats.RemoteBytes != 12 {
		t.Errorf("remote accounting = %d tuples / %d bytes, want 1/12", stats.RemoteTuples, stats.RemoteBytes)
	}
}

func TestFoldScalarMatchesFold(t *testing.T) {
	for _, agg := range []Agg{AggAssign, AggSum, AggMin, AggCount} {
		a := NewVecTable("A", 4)
		b := NewVecTable("B", 4)
		inputs := []float64{3, 1, 4, 1, 5}
		for _, x := range inputs {
			a.fold(agg, 0, Scalar(x))
			b.foldScalar(agg, 0, x)
		}
		av, _ := a.Get(0)
		bv, _ := b.Get(0)
		if av.S() != bv.S() {
			t.Errorf("%v: fold %v vs foldScalar %v", agg, av.S(), bv.S())
		}
	}
}
