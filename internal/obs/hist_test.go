package obs

import (
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"
)

func TestBucketBoundaries(t *testing.T) {
	// Every bucket's low value must map back to that bucket, the value one
	// below must map to the previous bucket, and widths must tile the
	// int64 range with no gaps or overlaps.
	for i := 0; i < histBuckets; i++ {
		low := bucketLow(i)
		if got := bucketIndex(low); got != i {
			t.Fatalf("bucketIndex(bucketLow(%d)=%d) = %d", i, low, got)
		}
		hi := low + bucketWidth(i) - 1
		if got := bucketIndex(hi); got != i {
			t.Fatalf("bucketIndex(high %d) = %d, want %d", hi, got, i)
		}
		if i > 0 {
			prevHi := bucketLow(i-1) + bucketWidth(i-1) - 1
			if prevHi+1 != low {
				t.Fatalf("gap between bucket %d (ends %d) and %d (starts %d)", i-1, prevHi, i, low)
			}
		}
	}
	if got := bucketIndex(0); got != 0 {
		t.Fatalf("bucketIndex(0) = %d", got)
	}
	if got := bucketIndex(int64(1)<<62 + 12345); got != histBuckets-4 {
		t.Fatalf("top octave index = %d, want %d", got, histBuckets-4)
	}
}

func TestHistogramQuantilePropertyVsExact(t *testing.T) {
	// Property test: for random value sets spanning several orders of
	// magnitude, every estimated quantile must be within the documented
	// bucket error bound of the exact order statistic: the estimate lands
	// in the same bucket as the exact value, so |est-exact| <= width-1 <=
	// exact/4.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 100 + rng.Intn(5000)
		h := newHistogram("t", 4)
		vals := make([]int64, n)
		for i := range vals {
			// Mix scales: exact small values, mid-range, and heavy tail.
			switch rng.Intn(3) {
			case 0:
				vals[i] = int64(rng.Intn(16))
			case 1:
				vals[i] = int64(rng.Intn(1 << 20))
			default:
				vals[i] = int64(rng.Int63n(1 << 40))
			}
			h.Record(i, vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		s := h.Snapshot()
		if s.Count != int64(n) {
			t.Fatalf("count = %d, want %d", s.Count, n)
		}
		for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1.0} {
			rank := int((q * float64(n)) + 0.9999999)
			if rank < 1 {
				rank = 1
			}
			if rank > n {
				rank = n
			}
			exact := vals[rank-1]
			est := s.Quantile(q)
			tol := exact/4 + 1
			if est < exact-tol || est > exact+tol {
				t.Fatalf("trial %d q=%g: est %d outside [%d±%d] (exact %d)",
					trial, q, est, exact, tol, exact)
			}
		}
		if s.Max != vals[n-1] {
			t.Fatalf("max = %d, want %d", s.Max, vals[n-1])
		}
	}
}

func TestHistogramMergeAssociativeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mk := func() HistSnapshot {
		h := newHistogram("m", 2)
		for i := 0; i < 500; i++ {
			h.Record(i, rng.Int63n(1<<30))
		}
		return h.Snapshot()
	}
	a, b, c := mk(), mk(), mk()
	eq := func(x, y HistSnapshot) bool {
		if x.Count != y.Count || x.Sum != y.Sum || x.Max != y.Max {
			return false
		}
		for i := range x.Buckets {
			if x.Buckets[i] != y.Buckets[i] {
				return false
			}
		}
		return true
	}
	if !eq(a.Merge(b), b.Merge(a)) {
		t.Fatal("Merge is not commutative")
	}
	if !eq(a.Merge(b).Merge(c), a.Merge(b.Merge(c))) {
		t.Fatal("Merge is not associative")
	}
	ab := a.Merge(b)
	if ab.Count != a.Count+b.Count || ab.Sum != a.Sum+b.Sum {
		t.Fatalf("Merge totals wrong: %+v", ab)
	}
}

func TestHistogramSubDelta(t *testing.T) {
	h := newHistogram("d", 2)
	for i := 0; i < 100; i++ {
		h.Record(0, int64(i))
	}
	before := h.Snapshot()
	for i := 0; i < 50; i++ {
		h.Record(1, 1000)
	}
	d := h.Snapshot().Sub(before)
	if d.Count != 50 || d.Sum != 50*1000 {
		t.Fatalf("delta count=%d sum=%d", d.Count, d.Sum)
	}
	if q := d.Quantile(0.5); q < 750 || q > 1250 {
		t.Fatalf("delta p50 = %d, want ~1000", q)
	}
}

func TestHistogramRaceStress(t *testing.T) {
	// Recording from GOMAXPROCS goroutines, including worker indices past
	// the lane count (they wrap by mask): totals must still be exact.
	workers := runtime.GOMAXPROCS(0)
	h := newHistogram("race", workers)
	per := 20000
	if testing.Short() {
		per = 2000
	}
	var wg sync.WaitGroup
	for w := 0; w < 2*workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(w, int64(i%1024))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	want := int64(2*workers) * int64(per)
	if s.Count != want {
		t.Fatalf("count = %d, want %d", s.Count, want)
	}
	var wantSum int64
	for i := 0; i < per; i++ {
		wantSum += int64(i % 1024)
	}
	wantSum *= int64(2 * workers)
	if s.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", s.Sum, wantSum)
	}
}

func TestNilHistogramAndNegativeClamp(t *testing.T) {
	var h *Histogram
	h.Record(0, 5) // must not panic
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("nil snapshot count = %d", s.Count)
	}
	if h.Name() != "" {
		t.Fatal("nil Name not empty")
	}
	real := newHistogram("n", 1)
	real.Record(0, -50)
	if s := real.Snapshot(); s.Count != 1 || s.Sum != 0 {
		t.Fatalf("negative clamp: %+v", s)
	}
}

func TestDisabledRecordAllocatesNothing(t *testing.T) {
	var h *Histogram
	var g *Gauge
	var r *Registry
	if n := testing.AllocsPerRun(100, func() {
		h.Record(3, 12345)
		g.Set(1)
		r.Hist("x").Record(0, 1)
	}); n != 0 {
		t.Fatalf("disabled obs path allocates %v per op, want 0", n)
	}
}

func TestEnabledRecordAllocatesNothing(t *testing.T) {
	h := newHistogram("steady", 4)
	if n := testing.AllocsPerRun(100, func() {
		h.Record(2, 98765)
	}); n != 0 {
		t.Fatalf("enabled Record allocates %v per op, want 0", n)
	}
}

func TestDeltaQuantiles(t *testing.T) {
	r := NewRegistry()
	r.Hist("a").Record(0, 10)
	prev := r.HistSnapshots()
	r.Hist("a").Record(0, 100)
	r.Hist("b").Record(0, 7)
	got := DeltaQuantiles(prev, r.HistSnapshots())
	if len(got) != 2 {
		t.Fatalf("delta hists = %v", got)
	}
	if got["a"].Count != 1 || got["b"].Count != 1 {
		t.Fatalf("delta counts: %+v", got)
	}
	// A histogram with no activity in the window must not appear.
	prev2 := r.HistSnapshots()
	r.Hist("b").Record(0, 8)
	got2 := DeltaQuantiles(prev2, r.HistSnapshots())
	if _, ok := got2["a"]; ok || got2["b"].Count != 1 {
		t.Fatalf("idle hist leaked into delta: %+v", got2)
	}
}
