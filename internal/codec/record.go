package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Record framing for checkpoint payloads (DESIGN.md §10). A checkpoint is a
// sequence of uvarint-length-prefixed sections; each section carries one
// typed array (raw little-endian words) or an opaque sub-record. The
// readers are hardened against arbitrary and truncated input: every length
// is validated against the remaining bytes before any allocation, so a
// corrupt checkpoint surfaces as an error, never a panic or an allocation
// bomb.

// ErrTruncated reports a record that ends mid-value.
var ErrTruncated = errors.New("codec: truncated record")

// AppendSection appends a length-prefixed byte section to dst and returns
// the extended slice.
func AppendSection(dst, section []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(section)))
	return append(dst, section...)
}

// Section reads the next length-prefixed section, returning it and the
// remaining bytes. The returned section aliases data.
func Section(data []byte) (section, rest []byte, err error) {
	n, w := binary.Uvarint(data)
	if w <= 0 {
		return nil, nil, ErrTruncated
	}
	data = data[w:]
	if n > uint64(len(data)) {
		return nil, nil, fmt.Errorf("codec: section claims %d bytes, %d remain: %w", n, len(data), ErrTruncated)
	}
	return data[:n], data[n:], nil
}

// AppendUvarint appends a uvarint-coded value.
func AppendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }

// Uvarint reads a uvarint-coded value and returns the remaining bytes.
func Uvarint(data []byte) (v uint64, rest []byte, err error) {
	v, w := binary.Uvarint(data)
	if w <= 0 {
		return 0, nil, ErrTruncated
	}
	return v, data[w:], nil
}

// AppendUint64 appends one 8-byte little-endian word.
func AppendUint64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

// Uint64 reads one word written by AppendUint64.
func Uint64(data []byte) (v uint64, rest []byte, err error) {
	if len(data) < 8 {
		return 0, nil, ErrTruncated
	}
	return binary.LittleEndian.Uint64(data), data[8:], nil
}

// AppendUint32 appends one 4-byte little-endian value.
func AppendUint32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

// Uint32 reads one value written by AppendUint32.
func Uint32(data []byte) (v uint32, rest []byte, err error) {
	if len(data) < 4 {
		return 0, nil, ErrTruncated
	}
	return binary.LittleEndian.Uint32(data), data[4:], nil
}

// AppendFloat64 appends one IEEE-754 double's exact bit pattern.
func AppendFloat64(dst []byte, v float64) []byte {
	return AppendUint64(dst, math.Float64bits(v))
}

// Float64 reads one value written by AppendFloat64, bit-identically.
func Float64(data []byte) (v float64, rest []byte, err error) {
	w, rest, err := Uint64(data)
	if err != nil {
		return 0, nil, err
	}
	return math.Float64frombits(w), rest, nil
}

// AppendUint64s appends a count-prefixed array of 8-byte little-endian
// words (bitset words, counters).
func AppendUint64s(dst []byte, vals []uint64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vals)))
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, v)
	}
	return dst
}

// Uint64s reads an array written by AppendUint64s.
func Uint64s(data []byte) (vals []uint64, rest []byte, err error) {
	n, data, err := Uvarint(data)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(data))/8 {
		return nil, nil, fmt.Errorf("codec: uint64 array claims %d entries, %d bytes remain: %w", n, len(data), ErrTruncated)
	}
	vals = make([]uint64, n)
	for i := range vals {
		vals[i] = binary.LittleEndian.Uint64(data[8*i:])
	}
	return vals, data[8*n:], nil
}

// AppendUint32s appends a count-prefixed array of 4-byte little-endian
// values. Unlike EncodeIDs it imposes no ordering requirement, so it suits
// frontier lists and per-vertex state.
func AppendUint32s(dst []byte, vals []uint32) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vals)))
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint32(dst, v)
	}
	return dst
}

// Uint32s reads an array written by AppendUint32s.
func Uint32s(data []byte) (vals []uint32, rest []byte, err error) {
	n, data, err := Uvarint(data)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(data))/4 {
		return nil, nil, fmt.Errorf("codec: uint32 array claims %d entries, %d bytes remain: %w", n, len(data), ErrTruncated)
	}
	vals = make([]uint32, n)
	for i := range vals {
		vals[i] = binary.LittleEndian.Uint32(data[4*i:])
	}
	return vals, data[4*n:], nil
}

// AppendInt64s appends a count-prefixed array of signed 64-bit values
// (CSR offset arrays) as their two's-complement bit patterns.
func AppendInt64s(dst []byte, vals []int64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vals)))
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
	}
	return dst
}

// Int64s reads an array written by AppendInt64s.
func Int64s(data []byte) (vals []int64, rest []byte, err error) {
	u, rest, err := Uint64s(data)
	if err != nil {
		return nil, nil, err
	}
	vals = make([]int64, len(u))
	for i, v := range u {
		vals[i] = int64(v)
	}
	return vals, rest, nil
}

// AppendFloat64s appends a count-prefixed array of IEEE-754 doubles in
// their exact bit patterns, so a round trip is bit-identical.
func AppendFloat64s(dst []byte, vals []float64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vals)))
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// Float64s reads an array written by AppendFloat64s.
func Float64s(data []byte) (vals []float64, rest []byte, err error) {
	words, rest, err := Uint64s(data)
	if err != nil {
		return nil, nil, err
	}
	vals = make([]float64, len(words))
	for i, w := range words {
		vals[i] = math.Float64frombits(w)
	}
	return vals, rest, nil
}

// AppendInt32s appends a count-prefixed array of signed 32-bit values
// (BFS distances) as their two's-complement bit patterns.
func AppendInt32s(dst []byte, vals []int32) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vals)))
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
	}
	return dst
}

// Int32s reads an array written by AppendInt32s.
func Int32s(data []byte) (vals []int32, rest []byte, err error) {
	u, rest, err := Uint32s(data)
	if err != nil {
		return nil, nil, err
	}
	vals = make([]int32, len(u))
	for i, v := range u {
		vals[i] = int32(v)
	}
	return vals, rest, nil
}
