package obs

import (
	"runtime"
	"sort"
	"sync"
)

// Registry is the unified metrics surface: histograms and gauges it owns,
// plus read-only int64 counter functions contributed by other packages
// (the tracer registers its per-lane counters this way, so obs never
// imports trace). Get-or-create accessors take the lock once per metric
// lifetime; the returned handles are lock-free afterwards. A nil *Registry
// is a valid disabled registry: accessors return nil handles whose methods
// are themselves no-ops, so instrumented code needs no enabled/disabled
// branches beyond the pointer checks already inside each call.
type Registry struct {
	mu       sync.Mutex
	hists    map[string]*Histogram
	gauges   map[string]*Gauge
	counters map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		hists:    make(map[string]*Histogram),
		gauges:   make(map[string]*Gauge),
		counters: make(map[string]func() int64),
	}
}

// Hist returns the named histogram, creating it with one lane per
// GOMAXPROCS worker on first use. Returns nil on a nil registry.
func (r *Registry) Hist(name string) *Histogram {
	return r.HistLanes(name, runtime.GOMAXPROCS(0))
}

// HistLanes is Hist with an explicit worker-lane hint, for callers that
// shard by something other than GOMAXPROCS (e.g. simulated cluster
// nodes). The hint only applies on first creation.
func (r *Registry) HistLanes(name string, workers int) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(name, workers)
		r.hists[name] = h
	}
	return h
}

// Gauge returns the named gauge, creating it on first use. Returns nil on
// a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// CounterFunc registers fn as the named read-only counter. Re-registering
// a name replaces the function (last writer wins). No-op on a nil
// registry or nil fn.
func (r *Registry) CounterFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] = fn
	r.mu.Unlock()
}

// CounterPoint is one sampled counter value.
type CounterPoint struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugePoint is one sampled gauge value.
type GaugePoint struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Snapshot is a consistent-enough point-in-time copy of the registry,
// with every section sorted by name so exposition is deterministic.
type Snapshot struct {
	Counters []CounterPoint `json:"counters,omitempty"`
	Gauges   []GaugePoint   `json:"gauges,omitempty"`
	Hists    []HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot samples every metric. Counter functions are called outside the
// registry lock paths they belong to but inside r.mu, which is fine: they
// are lock-free lane sums by construction. Returns nil on a nil registry.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{}
	for name, fn := range r.counters {
		s.Counters = append(s.Counters, CounterPoint{Name: name, Value: fn()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugePoint{Name: name, Value: g.Value()})
	}
	for _, h := range r.hists {
		s.Hists = append(s.Hists, h.Snapshot())
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Hists, func(i, j int) bool { return s.Hists[i].Name < s.Hists[j].Name })
	return s
}

// HistSnapshots samples only the histograms, keyed by name — the shape
// the harness diffs around each run. Returns nil on a nil registry.
func (r *Registry) HistSnapshots() map[string]HistSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	hs := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hs = append(hs, h)
	}
	r.mu.Unlock()
	out := make(map[string]HistSnapshot, len(hs))
	for _, h := range hs {
		out[h.name] = h.Snapshot()
	}
	return out
}
