package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// This file implements the suppression baseline: a checked-in JSON file
// recording the findings a repo has accepted (with reasons handled via
// lint:ignore) or not yet paid down. CI applies the baseline so only NEW
// findings fail the build; -write-baseline regenerates it. Entries are
// keyed on (file, rule, message) with a count rather than on line
// numbers, so unrelated edits that shift lines do not invalidate the
// baseline, while any new instance of a baselined pattern still fails.

// BaselineEntry is one accepted finding pattern.
type BaselineEntry struct {
	File  string `json:"file"`
	Rule  string `json:"rule"`
	Msg   string `json:"message"`
	Count int    `json:"count"`
}

// Baseline is the parsed suppression file.
type Baseline struct {
	Entries []BaselineEntry `json:"findings"`
}

type baselineKey struct {
	file, rule, msg string
}

// ReadBaseline loads a baseline file. A missing file yields an empty
// baseline (everything is new), not an error.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parse baseline %s: %w", path, err)
	}
	return &b, nil
}

// WriteBaseline writes the findings as a fresh baseline file, sorted and
// aggregated so regeneration is reproducible.
func WriteBaseline(path string, findings []Finding) error {
	b := NewBaseline(findings)
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// NewBaseline aggregates findings into baseline entries.
func NewBaseline(findings []Finding) *Baseline {
	counts := make(map[baselineKey]int)
	for _, f := range findings {
		counts[baselineKey{f.File, f.Rule, f.Msg}]++
	}
	keys := make([]baselineKey, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.rule != b.rule {
			return a.rule < b.rule
		}
		return a.msg < b.msg
	})
	b := &Baseline{Entries: make([]BaselineEntry, 0, len(keys))}
	for _, k := range keys {
		b.Entries = append(b.Entries, BaselineEntry{File: k.file, Rule: k.rule, Msg: k.msg, Count: counts[k]})
	}
	return b
}

// Apply splits findings into new (not covered by the baseline) and
// suppressed (covered). Each baseline entry absorbs up to Count findings
// with the same file, rule, and message; any excess instance of a
// baselined pattern is still new.
func (b *Baseline) Apply(findings []Finding) (fresh, suppressed []Finding) {
	budget := make(map[baselineKey]int, len(b.Entries))
	for _, e := range b.Entries {
		budget[baselineKey{e.File, e.Rule, e.Msg}] += e.Count
	}
	for _, f := range findings {
		k := baselineKey{f.File, f.Rule, f.Msg}
		if budget[k] > 0 {
			budget[k]--
			suppressed = append(suppressed, f)
		} else {
			fresh = append(fresh, f)
		}
	}
	return fresh, suppressed
}
