package graphlab

import (
	"errors"
	"testing"

	"graphmaze/internal/cluster"
	"graphmaze/internal/core"
	"graphmaze/internal/gen"
	"graphmaze/internal/graph"
)

func fixtureDirected(t testing.TB) *graph.CSR {
	t.Helper()
	edges, err := gen.RMAT(gen.Graph500Config(8, 8, 21))
	if err != nil {
		t.Fatal(err)
	}
	b := graph.NewBuilder(1 << 8)
	b.AddEdges(edges)
	g, err := b.Build(graph.BuildOptions{Dedup: true, DropSelfLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func fixtureUndirected(t testing.TB) *graph.CSR {
	t.Helper()
	edges, err := gen.RMAT(gen.Graph500Config(8, 8, 22))
	if err != nil {
		t.Fatal(err)
	}
	b := graph.NewBuilder(1 << 8)
	b.AddEdges(edges)
	g, err := b.Build(graph.BuildOptions{Orientation: graph.Symmetrize, Dedup: true, DropSelfLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func fixtureAcyclic(t testing.TB) *graph.CSR {
	t.Helper()
	edges, err := gen.RMAT(gen.TriangleConfig(8, 8, 23))
	if err != nil {
		t.Fatal(err)
	}
	b := graph.NewBuilder(1 << 8)
	b.AddEdges(edges)
	g, err := b.Build(graph.BuildOptions{Orientation: graph.OrientAcyclic, Dedup: true, SortAdjacency: true})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func fixtureRatings(t testing.TB) *graph.Bipartite {
	t.Helper()
	bp, err := gen.Ratings(gen.DefaultRatingsConfig(8, 16, 24))
	if err != nil {
		t.Fatal(err)
	}
	return bp
}

func TestIdentity(t *testing.T) {
	e := New()
	if e.Name() != "GraphLab" {
		t.Errorf("Name = %q", e.Name())
	}
	caps := e.Capabilities()
	if !caps.MultiNode || caps.SGD || caps.ProgrammingModel != "vertex" {
		t.Errorf("capabilities = %+v", caps)
	}
}

func TestPageRankMatchesReference(t *testing.T) {
	g := fixtureDirected(t)
	opt := core.PageRankOptions{Iterations: 7}
	want := core.RefPageRank(g, opt)
	res, err := New().PageRank(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if d := core.ComparePageRank(want, res.Ranks); d > 1e-9 {
		t.Errorf("max relative diff %v", d)
	}
	if res.Stats.Iterations != 7 {
		t.Errorf("rounds = %d", res.Stats.Iterations)
	}
}

func TestPageRankCluster(t *testing.T) {
	g := fixtureDirected(t)
	opt := core.PageRankOptions{Iterations: 5, Exec: core.Exec{Cluster: &cluster.Config{Nodes: 4}}}
	want := core.RefPageRank(g, core.PageRankOptions{Iterations: 5})
	res, err := New().PageRank(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if d := core.ComparePageRank(want, res.Ranks); d > 1e-9 {
		t.Errorf("max relative diff %v", d)
	}
	rep := res.Stats.Report
	if rep.BytesSent == 0 {
		t.Error("no traffic recorded")
	}
	// GraphLab uses sockets: achieved bandwidth must not exceed its
	// socket stack's ceiling.
	if rep.PeakNetworkBandwidth > cluster.IPoIBSockets().Bandwidth {
		t.Errorf("peak BW %v exceeds socket layer %v", rep.PeakNetworkBandwidth, cluster.IPoIBSockets().Bandwidth)
	}
}

func TestBFSMatchesReference(t *testing.T) {
	g := fixtureUndirected(t)
	want := core.RefBFS(g, 5)
	res, err := New().BFS(g, core.BFSOptions{Source: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !core.EqualDistances(want, res.Distances) {
		t.Error("distances differ from reference")
	}
}

func TestBFSCluster(t *testing.T) {
	g := fixtureUndirected(t)
	want := core.RefBFS(g, 5)
	res, err := New().BFS(g, core.BFSOptions{Source: 5, Exec: core.Exec{Cluster: &cluster.Config{Nodes: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	if !core.EqualDistances(want, res.Distances) {
		t.Error("cluster distances differ from reference")
	}
}

func TestBFSDisconnected(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdges([]graph.Edge{{Src: 0, Dst: 1}})
	g, _ := b.Build(graph.BuildOptions{Orientation: graph.Symmetrize, Dedup: true})
	res, err := New().BFS(g, core.BFSOptions{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{0, 1, -1, -1}
	if !core.EqualDistances(res.Distances, want) {
		t.Errorf("distances = %v, want %v", res.Distances, want)
	}
}

func TestTriangleCountMatchesReference(t *testing.T) {
	g := fixtureAcyclic(t)
	want := core.RefTriangleCount(g)
	res, err := New().TriangleCount(g, core.TriangleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want {
		t.Errorf("count = %d, want %d", res.Count, want)
	}
}

func TestTriangleCluster(t *testing.T) {
	g := fixtureAcyclic(t)
	want := core.RefTriangleCount(g)
	res, err := New().TriangleCount(g, core.TriangleOptions{Exec: core.Exec{Cluster: &cluster.Config{Nodes: 4}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want {
		t.Errorf("cluster count = %d, want %d", res.Count, want)
	}
	if res.Stats.Report.BytesSent == 0 {
		t.Error("no adjacency-shipping traffic recorded")
	}
}

func TestCollabFilterGD(t *testing.T) {
	bp := fixtureRatings(t)
	res, err := New().CollabFilter(bp, core.CFOptions{K: 8, Iterations: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RMSE) != 5 {
		t.Fatalf("RMSE entries = %d", len(res.RMSE))
	}
	if !core.MonotonicallyNonIncreasing(res.RMSE, 1e-3) {
		t.Errorf("GD RMSE not decreasing: %v", res.RMSE)
	}
}

func TestCollabFilterMatchesNativeGDTrajectory(t *testing.T) {
	// Same update rule, same seed → same trajectory as the serial
	// reference (modulo float ordering).
	bp := fixtureRatings(t)
	opt := core.CFOptions{K: 4, Iterations: 3, Seed: 11}
	ref := core.RefCollabFilterGD(bp, opt)
	res, err := New().CollabFilter(bp, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.RMSE {
		diff := ref.RMSE[i] - res.RMSE[i]
		if diff < 0 {
			diff = -diff
		}
		if diff > 1e-3 {
			t.Errorf("iteration %d: RMSE %v vs reference %v", i, res.RMSE[i], ref.RMSE[i])
		}
	}
}

func TestCollabFilterRejectsSGD(t *testing.T) {
	bp := fixtureRatings(t)
	_, err := New().CollabFilter(bp, core.CFOptions{Method: core.SGD})
	if !errors.Is(err, core.ErrUnsupported) {
		t.Errorf("err = %v, want ErrUnsupported", err)
	}
}

func TestCollabFilterCluster(t *testing.T) {
	bp := fixtureRatings(t)
	res, err := New().CollabFilter(bp, core.CFOptions{K: 8, Iterations: 3, Seed: 9,
		Exec: core.Exec{Cluster: &cluster.Config{Nodes: 4}}})
	if err != nil {
		t.Fatal(err)
	}
	if !core.MonotonicallyNonIncreasing(res.RMSE, 1e-3) {
		t.Errorf("distributed GD RMSE not decreasing: %v", res.RMSE)
	}
	if res.Stats.Report.BytesSent == 0 {
		t.Error("no factor traffic recorded")
	}
}

func TestGhostPlanCoversBoundaryEdges(t *testing.T) {
	g := fixtureDirected(t)
	part, err := graph.NewPartition1D(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan := buildGhostPlan(g, part)
	// Every cross-partition edge's source must appear in sendIDs[s][d].
	inPlan := func(s, d int, v uint32) bool {
		for _, id := range plan.sendIDs[s][d] {
			if id == v {
				return true
			}
		}
		return false
	}
	for v := uint32(0); v < g.NumVertices; v++ {
		s := part.Owner(v)
		for _, tgt := range g.Neighbors(v) {
			d := part.Owner(tgt)
			if d != s && !inPlan(s, d, v) {
				t.Fatalf("boundary vertex %d (owner %d) missing from plan to %d", v, s, d)
			}
		}
	}
}

func TestRunLocalQuiescence(t *testing.T) {
	// A program that never changes must stop after one round.
	g, _ := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1}})
	in := g.Transpose()
	spec := Spec[int, int]{
		Init:       func(uint32) int { return 0 },
		GatherZero: func() int { return 0 },
		Gather:     func(acc int, _ uint32, _ int, _ int64, _ float32) int { return acc },
		Apply: func(_ uint32, old int, _ int, _ bool) (int, bool, Activation) {
			return old, false, ActivateNone
		},
	}
	res := runLocal(g, in, spec)
	if res.rounds != 1 {
		t.Errorf("rounds = %d, want 1", res.rounds)
	}
}

func TestPageRankAsyncConvergesToSyncFixpoint(t *testing.T) {
	g := fixtureDirected(t)
	// The synchronous fixpoint after many rounds.
	want := core.RefPageRank(g, core.PageRankOptions{Iterations: 100})
	ranks, updates, err := New().PageRankAsync(g, core.PageRankOptions{}, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if updates <= int(g.NumVertices) {
		t.Errorf("async engine did only %d updates", updates)
	}
	if d := core.ComparePageRank(want, ranks); d > 1e-6 {
		t.Errorf("async fixpoint off by %v", d)
	}
}

func TestBFSAsyncMatchesReference(t *testing.T) {
	// BFS's min-update is monotone, so the async engine computes exact
	// distances regardless of schedule.
	g := fixtureUndirected(t)
	in := g.Transpose()
	spec := bfsSpec(5)
	res := runLocalAsync(g, in, spec, 0)
	want := core.RefBFS(g, 5)
	for v, d := range res.vals {
		got := d
		if got >= int32(1)<<30 {
			got = -1
		}
		if got != want[v] {
			t.Fatalf("vertex %d: async distance %d, want %d", v, got, want[v])
		}
	}
}
