package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ObsRule guards the observability layer's lane discipline inside parallel
// kernel bodies. obs.Histogram shards its buckets across per-worker lanes
// precisely so that concurrent Record calls do not contend; a Record
// inside a par.For* body that passes anything other than the body's worker
// index defeats that sharding — every worker hammers one lane's cache
// line, and the "free when enabled" promise of the histograms silently
// becomes a scalability bug in the hottest loops of the codebase.
//
// The rule flags, inside every function-literal body passed to a
// par.For*-family call in an engine package:
//
//   - any obs.Histogram Record call when the body has no worker parameter
//     (par.For, par.ForDynamic, ... — use the Indexed variant instead);
//   - a Record whose first argument is not exactly the body's worker
//     parameter (par.ForDynamicIndexed, par.ForWorkersIndexed).
//
// Record calls outside par bodies are exempt: serial code records into
// lane 0 (or any constant) with no contention.
type ObsRule struct{}

// Name implements Rule.
func (r *ObsRule) Name() string { return "obs" }

// Doc implements Rule.
func (r *ObsRule) Doc() string {
	return "histogram Record inside par.For* bodies must pass the body's worker index"
}

// Check implements Rule.
func (r *ObsRule) Check(p *Package, report func(pos token.Pos, format string, args ...any)) {
	if !isEngine(p.Rel) {
		return
	}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			forEachParBody(p, fn.Body, func(callName string, lit *ast.FuncLit) {
				r.checkBody(p, callName, lit, report)
			})
		}
	}
}

// checkBody inspects one par.For* kernel body for Record lane misuse.
func (r *ObsRule) checkBody(p *Package, callName string, lit *ast.FuncLit, report func(pos token.Pos, format string, args ...any)) {
	worker := workerParam(p, lit)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !isObsHistRecord(p, sel) {
			return true
		}
		if worker == nil {
			report(call.Pos(), "histogram Record inside %s body, which has no worker index; use the Indexed variant and pass its worker parameter as the lane", callName)
			return true
		}
		if len(call.Args) == 0 {
			return true
		}
		if id, ok := call.Args[0].(*ast.Ident); ok && p.Info.Uses[id] == worker {
			return true
		}
		report(call.Args[0].Pos(), "histogram Record inside %s must pass the worker index %q as its lane, not %s",
			callName, worker.Name(), types.ExprString(call.Args[0]))
		return true
	})
}

// workerParam returns the types object of a par kernel body's worker
// parameter: the first of three int parameters (the Indexed-variant
// shape func(worker, lo, hi int)). Two-parameter bodies have none.
func workerParam(p *Package, lit *ast.FuncLit) types.Object {
	var names []*ast.Ident
	for _, field := range lit.Type.Params.List {
		names = append(names, field.Names...)
	}
	if len(names) != 3 {
		return nil
	}
	return p.Info.Defs[names[0]]
}

// isObsHistRecord reports whether sel names the Record method of
// graphmaze/internal/obs's Histogram type.
func isObsHistRecord(p *Package, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "Record" {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Histogram" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/obs")
}
