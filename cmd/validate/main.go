// Command validate cross-checks every engine against the serial reference
// implementations on shared inputs — the correctness precondition behind
// all of the paper's performance comparisons.
//
// Usage:
//
//	validate            # default scale 10
//	validate -scale 12 -nodes 4
package main

import (
	"flag"
	"fmt"
	"os"

	"graphmaze/internal/cluster"
	"graphmaze/internal/core"
	"graphmaze/internal/gen"
	"graphmaze/internal/graph"

	"graphmaze/internal/combblas"
	"graphmaze/internal/galois"
	"graphmaze/internal/giraph"
	"graphmaze/internal/graphlab"
	"graphmaze/internal/native"
	"graphmaze/internal/socialite"
)

func main() {
	var (
		scale = flag.Int("scale", 10, "RMAT scale of the validation inputs")
		nodes = flag.Int("nodes", 1, "also validate simulated cluster runs at this node count (1 = single-node only)")
		seed  = flag.Int64("seed", 42, "generator seed")
	)
	flag.Parse()

	engines := []core.Engine{
		native.New(), combblas.New(), graphlab.New(),
		socialite.New(), giraph.New(), galois.New(),
	}

	build := func(opt graph.BuildOptions, cfg gen.RMATConfig) *graph.CSR {
		edges, err := gen.RMAT(cfg)
		check(err)
		b := graph.NewBuilder(cfg.NumVertices())
		b.AddEdges(edges)
		g, err := b.Build(opt)
		check(err)
		return g
	}
	prG := build(graph.BuildOptions{Dedup: true, DropSelfLoops: true, SortAdjacency: true}, gen.Graph500Config(*scale, 16, *seed))
	bfsG := build(graph.BuildOptions{Orientation: graph.Symmetrize, Dedup: true, DropSelfLoops: true, SortAdjacency: true}, gen.Graph500Config(*scale, 16, *seed+1))
	tcG := build(graph.BuildOptions{Orientation: graph.OrientAcyclic, Dedup: true, SortAdjacency: true}, gen.TriangleConfig(*scale, 8, *seed+2))
	cf, err := gen.Ratings(gen.DefaultRatingsConfig(*scale, 16, *seed+3))
	check(err)

	wantPR := core.RefPageRank(prG, core.PageRankOptions{Iterations: 5})
	wantBFS := core.RefBFS(bfsG, 0)
	wantTC := core.RefTriangleCount(tcG)
	fmt.Printf("inputs: scale %d — PR %d edges, BFS %d, TC %d (reference: %d triangles), CF %d ratings\n",
		*scale, prG.NumEdges(), bfsG.NumEdges(), tcG.NumEdges(), wantTC, cf.NumRatings())

	failures := 0
	runs := []struct {
		label string
		exec  core.Exec
	}{{"single-node", core.Exec{}}}
	if *nodes > 1 {
		runs = append(runs, struct {
			label string
			exec  core.Exec
		}{fmt.Sprintf("%d-node", *nodes), core.Exec{Cluster: &cluster.Config{Nodes: *nodes}}})
	}

	for _, run := range runs {
		for _, e := range engines {
			if run.exec.Cluster != nil && !e.Capabilities().MultiNode {
				fmt.Printf("%-10s %-10s skip (single-node framework)\n", e.Name(), run.label)
				continue
			}
			report := func(algo string, err error) {
				if err != nil {
					failures++
					fmt.Printf("%-10s %-10s %-14s FAIL: %v\n", e.Name(), run.label, algo, err)
				} else {
					fmt.Printf("%-10s %-10s %-14s ok\n", e.Name(), run.label, algo)
				}
			}

			pr, err := e.PageRank(prG, core.PageRankOptions{Iterations: 5, Exec: run.exec})
			if err == nil {
				if d := core.ComparePageRank(wantPR, pr.Ranks); d > 1e-4 {
					err = fmt.Errorf("max relative rank diff %v", d)
				}
			}
			report("pagerank", err)

			bfs, err := e.BFS(bfsG, core.BFSOptions{Source: 0, Exec: run.exec})
			if err == nil && !core.EqualDistances(wantBFS, bfs.Distances) {
				err = fmt.Errorf("distance vector mismatch")
			}
			if err == nil {
				// Graph500-style structural validation of the BFS output.
				err = core.ValidateBFS(bfsG, 0, bfs.Distances)
			}
			report("bfs", err)

			tc, err := e.TriangleCount(tcG, core.TriangleOptions{Exec: run.exec})
			if err == nil && tc.Count != wantTC {
				err = fmt.Errorf("count %d, want %d", tc.Count, wantTC)
			}
			report("triangles", err)

			method := core.GradientDescent
			if e.Capabilities().SGD {
				method = core.SGD
			}
			cfr, err := e.CollabFilter(cf, core.CFOptions{Method: method, K: 8, Iterations: 4, Seed: 7, Exec: run.exec})
			if err == nil {
				if !core.MonotonicallyNonIncreasing(cfr.RMSE, 1e-3) {
					err = fmt.Errorf("RMSE not non-increasing: %v", cfr.RMSE)
				} else if last := cfr.RMSE[len(cfr.RMSE)-1]; last >= cfr.RMSE[0] && len(cfr.RMSE) > 1 {
					err = fmt.Errorf("RMSE did not improve: %v", cfr.RMSE)
				}
			}
			report("collabfilter", err)
		}
	}

	if failures > 0 {
		fmt.Printf("%d validation failures\n", failures)
		os.Exit(1)
	}
	fmt.Println("all engines agree with the reference")
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
