// Package cuckoo implements a two-choice cuckoo hash set of uint32 keys.
//
// The paper attributes GraphLab's competitive triangle-counting numbers to
// exactly this structure (§5.3: "the cuckoo hash data structure that allows
// for a fast union of neighbor lists"). Lookups probe at most two buckets —
// two cache lines — which is what makes the neighbourhood-intersection
// inner loop fast.
package cuckoo

const (
	bucketSize    = 4 // 4-slot buckets keep load factors practical
	maxKicks      = 500
	emptySlot     = ^uint32(0) // sentinel; the set stores ids < 2^32-1
	minBucketRows = 2
)

// Set is an insert-and-lookup cuckoo hash set. The zero value is not
// usable; call New.
type Set struct {
	buckets [][]uint32 // two tables, flattened as rows of bucketSize
	rows    uint32
	size    int
	hasMax  bool // whether the sentinel key itself was inserted
}

// New returns a set pre-sized for the given number of keys.
func New(capacity int) *Set {
	rows := uint32(minBucketRows)
	for int(rows)*bucketSize*2 < capacity*5/4 {
		rows *= 2
	}
	return newWithRows(rows)
}

func newWithRows(rows uint32) *Set {
	s := &Set{rows: rows}
	for t := 0; t < 2; t++ {
		b := make([]uint32, rows*bucketSize)
		for i := range b {
			b[i] = emptySlot
		}
		s.buckets = append(s.buckets, b)
	}
	return s
}

// Len reports the number of keys stored.
func (s *Set) Len() int { return s.size }

func (s *Set) hash(table int, key uint32) uint32 {
	x := uint64(key)
	if table == 0 {
		x = (x ^ (x >> 16)) * 0x45d9f3b
		x = (x ^ (x >> 16)) * 0x45d9f3b
	} else {
		x = (x ^ (x >> 15)) * 0xd168aabb
		x = (x ^ (x >> 13)) * 0xaf723597
	}
	x ^= x >> 16
	return uint32(x) & (s.rows - 1)
}

// Contains reports whether key is in the set — at most two bucket probes.
func (s *Set) Contains(key uint32) bool {
	if key == emptySlot {
		return s.hasMax
	}
	for t := 0; t < 2; t++ {
		row := s.hash(t, key) * bucketSize
		b := s.buckets[t]
		for i := uint32(0); i < bucketSize; i++ {
			if b[row+i] == key {
				return true
			}
		}
	}
	return false
}

// Insert adds key to the set; duplicates are ignored. Insert reports
// whether the key was newly added.
func (s *Set) Insert(key uint32) bool {
	if key == emptySlot {
		if s.hasMax {
			return false
		}
		s.hasMax = true
		s.size++
		return true
	}
	if s.Contains(key) {
		return false
	}
	s.mustInsert(key)
	s.size++
	return true
}

// mustInsert places key, growing the tables until the kick chain succeeds.
// A failed chain leaves an orphaned victim in hand, which must be placed
// after the growth — dropping it would silently lose a key.
func (s *Set) mustInsert(key uint32) {
	for {
		orphan, ok := s.insertKicking(key)
		if ok {
			return
		}
		s.grow()
		key = orphan
	}
}

// insertKicking places key, displacing residents cuckoo-style. On failure
// it returns the key left without a home (which is generally NOT the key
// passed in — the chain evicted it from its slot along the way).
func (s *Set) insertKicking(key uint32) (orphan uint32, ok bool) {
	cur := key
	table := 0
	for kick := 0; kick < maxKicks; kick++ {
		row := s.hash(table, cur) * bucketSize
		b := s.buckets[table]
		for i := uint32(0); i < bucketSize; i++ {
			if b[row+i] == emptySlot {
				b[row+i] = cur
				return 0, true
			}
		}
		// Evict a pseudo-random resident (rotate by kick for determinism).
		victim := row + uint32(kick)%bucketSize
		cur, b[victim] = b[victim], cur
		table = 1 - table
	}
	return cur, false
}

// grow doubles the table and rehashes every resident key.
func (s *Set) grow() {
	old := s.buckets
	bigger := newWithRows(s.rows * 2)
	for _, table := range old {
		for _, key := range table {
			if key != emptySlot {
				bigger.mustInsert(key)
			}
		}
	}
	s.buckets = bigger.buckets
	s.rows = bigger.rows
}

// ForEach calls fn for every key in unspecified order.
func (s *Set) ForEach(fn func(uint32)) {
	if s.hasMax {
		fn(emptySlot)
	}
	for _, table := range s.buckets {
		for _, key := range table {
			if key != emptySlot {
				fn(key)
			}
		}
	}
}

// IntersectCount returns |s ∩ keys| — the triangle-counting primitive: the
// received neighbour list is streamed against the local cuckoo set.
func (s *Set) IntersectCount(keys []uint32) int {
	c := 0
	for _, k := range keys {
		if s.Contains(k) {
			c++
		}
	}
	return c
}

// MemoryBytes reports the resident size of the tables.
func (s *Set) MemoryBytes() int64 {
	return int64(len(s.buckets)) * int64(s.rows) * bucketSize * 4
}
