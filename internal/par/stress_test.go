package par

import (
	"sync/atomic"
	"testing"
)

// These tests exist to run under `go test -race`: they exercise nested and
// repeated use of the loop primitives and then verify exact results, so the
// race detector can observe the goroutine structure under real contention.
// testing.Short() scales sizes down so the -short race pass stays fast
// without skipping the scenario.

// TestNestedForStress nests For inside For — the shape engines produce when
// a parallel kernel calls a parallel helper — and checks the exact total,
// which would be wrong if chunks overlapped or a join were missing.
func TestNestedForStress(t *testing.T) {
	rows, cols := 64, 1<<13
	if testing.Short() {
		rows, cols = 32, 1<<10
	}
	data := make([][]int64, rows)
	for r := range data {
		row := make([]int64, cols)
		for c := range row {
			row[c] = int64(r + c)
		}
		data[r] = row
	}
	var total int64
	For(rows, func(rlo, rhi int) {
		for r := rlo; r < rhi; r++ {
			row := data[r]
			For(cols, func(clo, chi int) {
				var local int64
				for c := clo; c < chi; c++ {
					local += row[c]
				}
				atomic.AddInt64(&total, local)
			})
		}
	})
	var want int64
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			want += int64(r + c)
		}
	}
	if total != want {
		t.Fatalf("nested For total = %d, want %d", total, want)
	}
}

// TestForWorkersIndexedSlotDisjoint verifies the per-worker staging
// contract engines rely on: each worker index is handed out to exactly one
// goroutine per call, and the index ranges tile [0,n) without overlap. The
// per-slot writes are plain on purpose — if two goroutines ever shared a
// worker index, the race detector would fire.
func TestForWorkersIndexedSlotDisjoint(t *testing.T) {
	iters := 200
	if testing.Short() {
		iters = 40
	}
	workers, n := 8, 10_000
	for it := 0; it < iters; it++ {
		type span struct{ lo, hi int }
		slots := make([]span, workers)
		covered := make([]int64, n)
		ForWorkersIndexed(workers, n, func(w, lo, hi int) {
			slots[w] = span{lo, hi} // plain write: slot w must be exclusive
			for i := lo; i < hi; i++ {
				atomic.AddInt64(&covered[i], 1)
			}
		})
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("iter %d: index %d covered %d times, want exactly once", it, i, c)
			}
		}
		for w, s := range slots {
			if s.hi < s.lo {
				t.Fatalf("iter %d: worker %d got inverted range [%d,%d)", it, w, s.lo, s.hi)
			}
		}
	}
}

// TestForDynamicStress hammers the atomic-counter chunk claiming: chunks
// must tile [0,n) with no overlap even under contention, so the per-index
// writes are plain on purpose — if two workers ever claimed the same
// chunk, the race detector would fire and the exact-count check would
// fail.
func TestForDynamicStress(t *testing.T) {
	n, iters := 1<<17, 30
	if testing.Short() {
		n, iters = 1<<13, 8
	}
	covered := make([]int64, n)
	for it := 0; it < iters; it++ {
		ForDynamic(n, 37, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				covered[i]++ // plain write: chunks are disjoint and joined
			}
		})
	}
	for i, c := range covered {
		if c != int64(iters) {
			t.Fatalf("index %d covered %d times, want %d", i, c, iters)
		}
	}
}

// TestForDynamicIndexedScratchExclusive verifies the per-worker scratch
// contract the triangle kernel relies on: a worker index is owned by
// exactly one goroutine for the whole loop, so unsynchronized reads and
// writes of scratch[worker] across the worker's many chunks are safe.
func TestForDynamicIndexedScratchExclusive(t *testing.T) {
	iters := 100
	if testing.Short() {
		iters = 20
	}
	n := 20_000
	for it := 0; it < iters; it++ {
		scratch := make([]int, NumWorkers())
		var total int64
		ForDynamicIndexed(n, 53, func(w, lo, hi int) {
			scratch[w] += hi - lo // plain read-modify-write: slot w is exclusive
			atomic.AddInt64(&total, int64(hi-lo))
		})
		if total != int64(n) {
			t.Fatalf("iter %d: covered %d of %d", it, total, n)
		}
		sum := 0
		for _, s := range scratch {
			sum += s
		}
		if sum != n {
			t.Fatalf("iter %d: scratch sums to %d, want %d", it, sum, n)
		}
	}
}

// TestForOffsetsStress runs the edge-balanced splitter over a skewed
// degree sequence with plain per-vertex writes, mirroring the PageRank
// gather's write pattern (each vertex written by exactly one worker).
func TestForOffsetsStress(t *testing.T) {
	n, iters := 1<<15, 40
	if testing.Short() {
		n, iters = 1<<12, 10
	}
	degs := make([]int64, n)
	for i := range degs {
		degs[i] = int64(i % 7)
		if i%1000 == 0 {
			degs[i] = 50_000 // hubs: force lopsided vertex ranges
		}
	}
	offsets := make([]int64, n+1)
	for i, d := range degs {
		offsets[i+1] = offsets[i] + d
	}
	acc := make([]int64, n)
	for it := 0; it < iters; it++ {
		ForOffsets(offsets, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				acc[i]++ // plain write: ranges tile [0,n) and the loop joins
			}
		})
	}
	for i, v := range acc {
		if v != int64(iters) {
			t.Fatalf("acc[%d] = %d, want %d", i, v, iters)
		}
	}
}

// TestForReuseStress reruns For back-to-back with an accumulator carried
// across calls, the shape of an iterative kernel (PageRank's per-iteration
// parallel sweep), verifying no writes leak across the implicit barrier.
func TestForReuseStress(t *testing.T) {
	n := 1 << 15
	rounds := 50
	if testing.Short() {
		n, rounds = 1<<12, 10
	}
	acc := make([]int64, n)
	for round := 0; round < rounds; round++ {
		For(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				acc[i]++ // plain write: For guarantees disjoint chunks and a full join
			}
		})
	}
	for i, v := range acc {
		if v != int64(rounds) {
			t.Fatalf("acc[%d] = %d, want %d", i, v, rounds)
		}
	}
}
