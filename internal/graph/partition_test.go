package graph

import "testing"

func chain(t *testing.T, n uint32) *CSR {
	t.Helper()
	edges := make([]Edge, 0, n-1)
	for v := uint32(0); v+1 < n; v++ {
		edges = append(edges, Edge{v, v + 1})
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPartition1DCoversAllVertices(t *testing.T) {
	g := chain(t, 100)
	p, err := NewPartition1D(g, 7)
	if err != nil {
		t.Fatal(err)
	}
	var total uint32
	prev := uint32(0)
	for i := 0; i < p.NumParts; i++ {
		lo, hi := p.Range(i)
		if lo != prev {
			t.Errorf("part %d starts at %d, want %d", i, lo, prev)
		}
		total += hi - lo
		prev = hi
	}
	if total != g.NumVertices {
		t.Errorf("parts cover %d vertices, want %d", total, g.NumVertices)
	}
	if prev != g.NumVertices {
		t.Errorf("last part ends at %d, want %d", prev, g.NumVertices)
	}
}

func TestPartition1DOwnerMatchesRange(t *testing.T) {
	g := chain(t, 64)
	p, err := NewPartition1D(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	for v := uint32(0); v < g.NumVertices; v++ {
		o := p.Owner(v)
		lo, hi := p.Range(o)
		if v < lo || v >= hi {
			t.Errorf("Owner(%d)=%d but range is [%d,%d)", v, o, lo, hi)
		}
	}
}

func TestPartition1DEdgeBalance(t *testing.T) {
	// A skewed graph: vertex 0 has 90 edges, the rest have 1. Balanced-by-
	// edges partitioning should not give part 0 everything.
	edges := make([]Edge, 0, 190)
	for i := uint32(1); i <= 90; i++ {
		edges = append(edges, Edge{0, i % 100})
	}
	for v := uint32(1); v < 100; v++ {
		edges = append(edges, Edge{v, (v + 1) % 100})
	}
	g, err := FromEdges(100, edges)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPartition1D(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := p.Range(0)
	edges0 := g.Offsets[hi] - g.Offsets[lo]
	if edges0 > g.NumEdges() {
		t.Fatalf("part 0 edge count %d out of range", edges0)
	}
	// Part 0 holds the hub; it should stop quickly after covering ~1/4 of
	// the edges rather than absorbing most vertices.
	if hi > 60 {
		t.Errorf("part 0 spans [%d,%d); expected edge-balanced cut below 60", lo, hi)
	}
}

func TestPartition1DSinglePart(t *testing.T) {
	g := chain(t, 10)
	p, err := NewPartition1D(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := p.Range(0)
	if lo != 0 || hi != 10 {
		t.Errorf("single part range [%d,%d), want [0,10)", lo, hi)
	}
}

func TestPartition1DErrors(t *testing.T) {
	g := chain(t, 4)
	if _, err := NewPartition1D(g, 0); err == nil {
		t.Error("expected error for 0 parts")
	}
	if _, err := NewPartition1D(g, 9); err == nil {
		t.Error("expected error for more parts than vertices")
	}
}

func TestPartition1DMorePartsThanNeeded(t *testing.T) {
	// Every part must own at least one vertex even when early parts could
	// swallow all edges.
	edges := []Edge{{0, 1}, {0, 2}, {0, 3}, {0, 1}}
	g, err := FromEdges(4, edges)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPartition1D(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if p.NumLocalVertices(i) == 0 {
			t.Errorf("part %d owns no vertices", i)
		}
	}
}

func TestEdgeCut(t *testing.T) {
	g := chain(t, 10) // 9 edges in a path
	p, err := NewPartition1D(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	// A contiguous split of a path cuts exactly one edge.
	if cut := p.EdgeCut(g); cut != 1 {
		t.Errorf("EdgeCut = %d, want 1", cut)
	}
	p1, _ := NewPartition1D(g, 1)
	if cut := p1.EdgeCut(g); cut != 0 {
		t.Errorf("EdgeCut single part = %d, want 0", cut)
	}
}

func TestReplicatedPartition(t *testing.T) {
	// Star graph: vertex 0 is the hub.
	edges := make([]Edge, 0, 40)
	for v := uint32(1); v < 21; v++ {
		edges = append(edges, Edge{0, v}, Edge{v, 0})
	}
	g, err := FromEdges(21, edges)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := NewReplicatedPartition(g, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !rp.IsReplicated(0) {
		t.Error("hub vertex should be replicated")
	}
	if rp.IsReplicated(5) {
		t.Error("leaf vertex should not be replicated")
	}
	if len(rp.Replicated) != 1 {
		t.Errorf("Replicated = %v, want just the hub", rp.Replicated)
	}
}

func TestPartition2D(t *testing.T) {
	p, err := NewPartition2D(100, 9)
	if err != nil {
		t.Fatal(err)
	}
	if p.GridDim != 3 {
		t.Fatalf("GridDim = %d, want 3", p.GridDim)
	}
	// Every edge maps to exactly one part, and the block coordinates are
	// consistent with Owner.
	for _, e := range []Edge{{0, 0}, {0, 99}, {99, 0}, {50, 50}, {33, 66}} {
		o := p.Owner(e.Src, e.Dst)
		if o < 0 || o >= 9 {
			t.Errorf("Owner(%d,%d) = %d out of range", e.Src, e.Dst, o)
		}
		r, c := p.Block(o)
		if e.Src < p.RowStarts[r] || e.Src >= p.RowStarts[r+1] {
			t.Errorf("edge (%d,%d): src outside block row %d", e.Src, e.Dst, r)
		}
		if e.Dst < p.ColStarts[c] || e.Dst >= p.ColStarts[c+1] {
			t.Errorf("edge (%d,%d): dst outside block col %d", e.Src, e.Dst, c)
		}
	}
}

func TestPartition2DRejectsNonSquare(t *testing.T) {
	if _, err := NewPartition2D(10, 8); err == nil {
		t.Error("expected error for non-square part count")
	}
	if _, err := NewPartition2D(10, 0); err == nil {
		t.Error("expected error for zero parts")
	}
}

func TestPartition2DRowsCoverVertices(t *testing.T) {
	p, err := NewPartition2D(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.RowStarts[0] != 0 || p.RowStarts[p.GridDim] != 10 {
		t.Errorf("RowStarts = %v, want cover of [0,10)", p.RowStarts)
	}
	for i := 1; i <= p.GridDim; i++ {
		if p.RowStarts[i] < p.RowStarts[i-1] {
			t.Errorf("RowStarts not monotone: %v", p.RowStarts)
		}
	}
}
