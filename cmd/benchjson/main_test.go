package main

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	text := `goos: linux
goarch: amd64
pkg: graphmaze/internal/par
cpu: fake cpu
BenchmarkParFor-8   	     100	  12345678 ns/op	     128 B/op	       2 allocs/op
BenchmarkPageRank/Native-8  	      10	 987654321 ns/op
PASS
`
	rs, err := parse(bufio.NewScanner(strings.NewReader(text)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("got %d results, want 2", len(rs))
	}
	if rs[0].Name != "BenchmarkParFor-8" || rs[0].NsPerOp != 12345678 || rs[0].Iterations != 100 {
		t.Errorf("first result wrong: %+v", rs[0])
	}
	if rs[0].Metrics["allocs/op"] != 2 || rs[0].Metrics["B/op"] != 128 {
		t.Errorf("metrics wrong: %+v", rs[0].Metrics)
	}
	if rs[0].Package != "graphmaze/internal/par" || rs[0].CPU != "fake cpu" {
		t.Errorf("context wrong: %+v", rs[0])
	}
	if rs[1].Name != "BenchmarkPageRank/Native-8" {
		t.Errorf("second result wrong: %+v", rs[1])
	}
}

func TestBaseName(t *testing.T) {
	cases := map[string]string{
		"BenchmarkParFor-8":         "BenchmarkParFor",
		"BenchmarkParFor-128":       "BenchmarkParFor",
		"BenchmarkPageRank/Native":  "BenchmarkPageRank/Native",
		"BenchmarkOdd-Name":         "BenchmarkOdd-Name",
		"BenchmarkPageRank/CSR-4-2": "BenchmarkPageRank/CSR-4",
	}
	for in, want := range cases {
		if got := baseName(in); got != want {
			t.Errorf("baseName(%q) = %q, want %q", in, got, want)
		}
	}
}

func writeBench(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffDetectsNsRegression(t *testing.T) {
	oldP := writeBench(t, "old.json", `[{"name":"BenchmarkX-8","iterations":10,"ns_per_op":100}]`)
	newP := writeBench(t, "new.json", `[{"name":"BenchmarkX-4","iterations":10,"ns_per_op":200}]`)
	var out strings.Builder
	regressed, err := runDiff(&out, oldP, newP, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatalf("2x slowdown not flagged; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Errorf("output missing REGRESSED marker:\n%s", out.String())
	}
}

func TestDiffWithinThresholdPasses(t *testing.T) {
	oldP := writeBench(t, "old.json", `[{"name":"BenchmarkX-8","iterations":10,"ns_per_op":100,"metrics":{"allocs/op":3}}]`)
	newP := writeBench(t, "new.json", `[{"name":"BenchmarkX-8","iterations":10,"ns_per_op":110,"metrics":{"allocs/op":3}}]`)
	var out strings.Builder
	regressed, err := runDiff(&out, oldP, newP, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("10%% slowdown under 1.25x threshold flagged; output:\n%s", out.String())
	}
}

func TestDiffDetectsAllocRegression(t *testing.T) {
	oldP := writeBench(t, "old.json", `[{"name":"BenchmarkX-8","iterations":10,"ns_per_op":100,"metrics":{"allocs/op":0}}]`)
	newP := writeBench(t, "new.json", `[{"name":"BenchmarkX-8","iterations":10,"ns_per_op":100,"metrics":{"allocs/op":5}}]`)
	var out strings.Builder
	regressed, err := runDiff(&out, oldP, newP, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatalf("0 -> 5 allocs/op not flagged; output:\n%s", out.String())
	}
}

func TestDiffNoOverlapIsClean(t *testing.T) {
	oldP := writeBench(t, "old.json", `[{"name":"BenchmarkA-8","iterations":10,"ns_per_op":100}]`)
	newP := writeBench(t, "new.json", `[{"name":"BenchmarkB-8","iterations":10,"ns_per_op":900}]`)
	var out strings.Builder
	regressed, err := runDiff(&out, oldP, newP, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("disjoint benchmark sets must not fail; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "new only") || !strings.Contains(out.String(), "old only") {
		t.Errorf("unmatched benchmarks not reported:\n%s", out.String())
	}
}
